"""Weakly-consistent RPC endpoint (paper §4.2.1-D3).

Serverless RPCs are mostly independent, single-packet request-response
pairs that do not need TCP's strict in-order streaming. The sender
tracks outstanding RPCs and retransmits on timeout; receivers must
tolerate duplicates. :class:`RpcEndpoint` packages that pattern for any
component that talks over the simulated network.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..net import HeaderStack, LambdaHeader, Packet, RpcHeader, UDPHeader
from ..net.network import Node
from ..obs import Tracer
from ..sim import Environment


class RpcTimeout(Exception):
    """The peer did not answer within the retry budget."""


class RpcEndpoint:
    """Request/response matching with timeout-based retransmission."""

    def __init__(self, env: Environment, node: Node,
                 timeout: float = 0.05, retries: int = 3) -> None:
        self.env = env
        self.node = node
        self.timeout = timeout
        self.retries = retries
        self._ids = itertools.count(1)
        self._waiting: Dict[int, Any] = {}
        self.retransmissions = 0
        self.timeouts = 0

    def on_packet(self, packet: Packet) -> bool:
        """Feed a received packet; returns True if it completed an RPC.

        Call this from the owner's receive handler (the endpoint does
        not attach itself, so owners can multiplex other traffic).
        """
        header = packet.headers.get("LambdaHeader")
        if header is None or not header.is_response:
            return False
        waiter = self._waiting.pop(header.request_id, None)
        if waiter is None or waiter.triggered:
            return False
        waiter.succeed(packet)
        return True

    def call(self, dst: str, method: str = "", key: str = "",
             payload: Any = None, payload_bytes: int = 64,
             wid: int = 0, build: Optional[Callable[[int], Packet]] = None):
        """Process: send a request and wait for the matched response.

        ``build(request_id)`` may be supplied to fully customise the
        packet; otherwise a standard UDP+Lambda+Rpc request is sent.
        """
        return self.env.process(self._call(
            dst, method, key, payload, payload_bytes, wid, build,
        ))

    def _call(self, dst, method, key, payload, payload_bytes, wid, build):
        request_id = next(self._ids)
        attempt = 0
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "rpc.call", "rpc", trace_id=tracer.new_trace(),
                node=self.node.name,
                tags={"dst": dst, "method": method},
            )
        while True:
            attempt += 1
            waiter = self.env.event()
            self._waiting[request_id] = waiter
            packet = build(request_id) if build is not None else Packet(
                src=self.node.name, dst=dst,
                headers=HeaderStack([
                    UDPHeader(),
                    LambdaHeader(wid=wid, request_id=request_id),
                    RpcHeader(method=method, key=key),
                ]),
                payload=payload,
                payload_bytes=payload_bytes,
            )
            if span is not None:
                Tracer.stamp_packet(packet, span)
            self.node.send(packet)
            outcome = yield self.env.any_of(
                [waiter, self.env.timeout(self.timeout, value=None)]
            )
            if waiter in outcome:
                if tracer is not None:
                    tracer.end(span, tags={"ok": 1, "attempts": attempt})
                return waiter.value
            self._waiting.pop(request_id, None)
            self.timeouts += 1
            if attempt > self.retries:
                if tracer is not None:
                    tracer.end(span, tags={"ok": 0, "attempts": attempt})
                raise RpcTimeout(
                    f"no response from {dst!r} after {self.retries} retries"
                )
            self.retransmissions += 1

    @property
    def outstanding(self) -> int:
        return len(self._waiting)
