"""Segmentation of large messages into multi-packet RDMA writes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: RoCEv2-style default segment (the NIC's RDMA MTU).
DEFAULT_SEGMENT_BYTES = 4096


@dataclass(frozen=True)
class Segment:
    """One segment of a multi-packet message."""

    seq: int
    total: int
    offset: int
    length: int
    payload: Optional[bytes] = None

    @property
    def is_last(self) -> bool:
        return self.seq == self.total - 1


def segment_message(
    size_bytes: int,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    payload: Optional[bytes] = None,
) -> List[Segment]:
    """Split ``size_bytes`` (optionally with content) into segments."""
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    if segment_bytes <= 0:
        raise ValueError("segment size must be positive")
    if payload is not None and len(payload) != size_bytes:
        raise ValueError("payload length disagrees with size_bytes")
    total = max(1, (size_bytes + segment_bytes - 1) // segment_bytes)
    segments = []
    for seq in range(total):
        offset = seq * segment_bytes
        length = min(segment_bytes, size_bytes - offset) if size_bytes else 0
        chunk = payload[offset:offset + length] if payload is not None else None
        segments.append(Segment(seq=seq, total=total, offset=offset,
                                length=max(0, length), payload=chunk))
    return segments


def reassemble(segments: List[Segment]) -> bytes:
    """Concatenate segment payloads in sequence order."""
    if not segments:
        raise ValueError("no segments")
    ordered = sorted(segments, key=lambda segment: segment.seq)
    total = ordered[0].total
    if [segment.seq for segment in ordered] != list(range(total)):
        raise ValueError("missing or duplicate segments")
    if any(segment.payload is None for segment in ordered):
        raise ValueError("segments carry no payload")
    return b"".join(segment.payload for segment in ordered)
