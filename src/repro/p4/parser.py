"""P4-style packet parsers.

A :class:`ParserSpec` is a chain of extract states. λ-NIC auto-generates
the parser from the headers each lambda actually uses (paper
contribution #3), so developers never write packet-processing logic.

Parsing has two faces here:

* ``parse(packet)`` — structural: turn a simulated packet's header stack
  into the ``headers``/``meta`` dicts lambdas operate on.
* ``generate_function()`` — costing: the equivalent NPU instruction
  sequence, which is linked into the firmware so instruction counts and
  cycle charges include parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..isa import Function, Op, ins
from ..net.headers import header_class
from ..net.packet import Packet

#: Canonical outer-to-inner order for auto-generated parsers.
CANONICAL_ORDER = [
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "TCPHeader",
    "LambdaHeader",
    "RpcHeader",
    "RdmaHeader",
    "ServerHdr",
]

#: IR instructions charged per extracted header (guard + extract cost).
_EXTRACT_PROLOGUE = 2   # mload has_X + beq
_EXTRACT_COST = 9       # modelled per-field shift/mask extraction work


@dataclass
class ParserState:
    """One extract state in the parser graph."""

    header: str
    #: Headers that may follow this one (None = accept afterwards).
    next_headers: Sequence[str] = ()

    def __post_init__(self) -> None:
        header_class(self.header)  # validate eagerly


class ParserSpec:
    """An ordered chain of parser states."""

    def __init__(self, states: Optional[List[ParserState]] = None) -> None:
        self.states = states or []

    @property
    def headers(self) -> List[str]:
        return [state.header for state in self.states]

    def parse(self, packet: Packet) -> Dict[str, Dict[str, Any]]:
        """Extract declared headers from ``packet`` into field dicts."""
        extracted: Dict[str, Dict[str, Any]] = {}
        for state in self.states:
            header = packet.headers.get(state.header)
            if header is None:
                continue
            extracted[state.header] = {
                name: getattr(header, name) for name in header.field_names()
            }
        return extracted

    def valid_meta(self, packet: Packet) -> Dict[str, Any]:
        """``has_X``/``valid_X`` metadata the firmware branches on."""
        meta: Dict[str, Any] = {}
        for state in self.states:
            present = 1 if state.header in packet.headers else 0
            meta[f"has_{state.header}"] = present
        return meta

    def generate_function(self, name: str = "parse") -> Function:
        """The NPU instruction sequence equivalent of this parser."""
        body = []
        for state in self.states:
            skip = f"{name}_skip_{state.header}"
            body.append(ins(Op.MLOAD, "r12", ("meta", f"has_{state.header}")))
            body.append(ins(Op.BEQ, "r12", 0, skip))
            # Extraction cost: shift/mask work per header.
            for _ in range(_EXTRACT_COST - 1):
                body.append(ins(Op.NOP))
            body.append(ins(Op.MSTORE, ("meta", f"valid_{state.header}"), 1))
            body.append(ins(Op.LABEL, skip))
        body.append(ins(Op.RET))
        return Function(name, body)

    @property
    def instruction_count(self) -> int:
        per_header = _EXTRACT_PROLOGUE + _EXTRACT_COST
        return len(self.states) * per_header + 1  # + ret

    def __repr__(self) -> str:
        return f"<ParserSpec {'->'.join(self.headers)}>"


def generate_parser(headers_used: Sequence[str]) -> ParserSpec:
    """Auto-generate a parser covering exactly the headers lambdas use.

    The base L2-L4 chain is always parsed (the NIC must route); inner
    application headers are included only when some lambda touches them
    — this is what "match reduction" later shrinks further.
    """
    base = {"EthernetHeader", "IPv4Header", "UDPHeader", "LambdaHeader"}
    wanted = base | set(headers_used)
    unknown = wanted - set(CANONICAL_ORDER)
    if unknown:
        raise KeyError(f"no parser support for headers: {sorted(unknown)}")
    ordered = [name for name in CANONICAL_ORDER if name in wanted]
    states = [
        ParserState(name, next_headers=ordered[index + 1:index + 2])
        for index, name in enumerate(ordered)
    ]
    return ParserSpec(states)
