"""Lowering P4 constructs to NPU instructions.

Two strategies exist for tables, matching the paper's "match reduction"
discussion (§5.1):

* :func:`lower_table_naive` — a modelled hardware-style lookup: per
  lookup the key is loaded, a table-engine invocation is charged, and
  the result metadata is written. Costs scale with key width and carry
  fixed per-table overhead.
* :func:`lower_table_if_else` — the optimised form: the table becomes a
  chain of compare-and-branch instructions, which NPU cores execute
  more efficiently and which removes the per-table engine overhead.
"""

from __future__ import annotations

import itertools
from typing import List

from ..isa import Function, Instruction, Op, ins
from .control import (
    ApplyTable,
    ControlBlock,
    Drop,
    Forward,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
    Statement,
)
from .tables import Table

#: Registers reserved by lowered match-stage code.
_KEY_REGS = ["r8", "r9", "r10", "r11"]
#: Fixed modelled overhead of a table-engine invocation (naive path):
#: issue + wait + result unpack.
_TABLE_ENGINE_OVERHEAD = 6

_label_ids = itertools.count(1)


def _fresh(prefix: str) -> str:
    return f"{prefix}_{next(_label_ids)}"


def lower_table_naive(table: Table) -> List[Instruction]:
    """Hardware-lookup-style lowering (pre-match-reduction)."""
    body: List[Instruction] = []
    for index, (header, field_name) in enumerate(table.keys):
        body.append(ins(Op.HLOAD, _KEY_REGS[index % len(_KEY_REGS)],
                        ("hdr", header, field_name)))
    # Table-engine invocation overhead.
    for _ in range(_TABLE_ENGINE_OVERHEAD):
        body.append(ins(Op.NOP))
    # The engine still resolves to per-entry metadata writes; model the
    # result demux as a compare chain over the loaded key.
    body.extend(_entry_compare_chain(table, label_prefix=f"{table.name}_naive"))
    return body


def lower_table_if_else(table: Table) -> List[Instruction]:
    """If-else lowering (post-match-reduction): no engine overhead."""
    body: List[Instruction] = []
    for index, (header, field_name) in enumerate(table.keys):
        body.append(ins(Op.HLOAD, _KEY_REGS[index % len(_KEY_REGS)],
                        ("hdr", header, field_name)))
    body.extend(_entry_compare_chain(table, label_prefix=f"{table.name}_ifelse"))
    return body


def _entry_compare_chain(table: Table, label_prefix: str) -> List[Instruction]:
    body: List[Instruction] = []
    end = _fresh(f"{label_prefix}_end")
    for entry_index, entry in enumerate(table.entries):
        next_entry = _fresh(f"{label_prefix}_n{entry_index}")
        for key_index, key_value in enumerate(entry.key):
            body.append(
                ins(Op.BNE, _KEY_REGS[key_index % len(_KEY_REGS)], key_value,
                    next_entry)
            )
        action = table.actions[entry.action]
        for write_key in action.writes:
            body.append(
                ins(Op.MSTORE, ("meta", write_key), entry.params[write_key])
            )
        body.append(ins(Op.MSTORE, ("meta", f"{table.name}_hit"), 1))
        body.append(ins(Op.JMP, end))
        body.append(ins(Op.LABEL, next_entry))
    if table.default_action is not None:
        body.append(ins(Op.MSTORE, ("meta", f"{table.name}_hit"), 0))
    body.append(ins(Op.LABEL, end))
    return body


def lower_control(
    control: ControlBlock,
    name: str = "match_dispatch",
    use_if_else_tables: bool = False,
) -> Function:
    """Lower a control block into a single dispatch function."""
    body: List[Instruction] = []
    _lower_statements(control.statements, body, use_if_else_tables)
    body.append(ins(Op.TO_HOST))  # Fallthrough: unmatched traffic to host.
    return Function(name, body)


def _lower_statements(statements: List[Statement], body: List[Instruction],
                      use_if_else_tables: bool) -> None:
    for statement in statements:
        if isinstance(statement, IfValid):
            orelse = _fresh("ctl_else")
            end = _fresh("ctl_end")
            body.append(ins(Op.MLOAD, "r13",
                            ("meta", f"valid_{statement.header}")))
            body.append(ins(Op.BEQ, "r13", 0, orelse))
            _lower_statements(statement.then, body, use_if_else_tables)
            body.append(ins(Op.JMP, end))
            body.append(ins(Op.LABEL, orelse))
            _lower_statements(statement.orelse, body, use_if_else_tables)
            body.append(ins(Op.LABEL, end))
        elif isinstance(statement, IfFieldEq):
            orelse = _fresh("ctl_else")
            end = _fresh("ctl_end")
            body.append(ins(Op.HLOAD, "r13",
                            ("hdr", statement.header, statement.field_name)))
            body.append(ins(Op.BNE, "r13", statement.value, orelse))
            _lower_statements(statement.then, body, use_if_else_tables)
            body.append(ins(Op.JMP, end))
            body.append(ins(Op.LABEL, orelse))
            _lower_statements(statement.orelse, body, use_if_else_tables)
            body.append(ins(Op.LABEL, end))
        elif isinstance(statement, ApplyTable):
            lower = lower_table_if_else if use_if_else_tables else lower_table_naive
            body.extend(lower(statement.table))
        elif isinstance(statement, InvokeLambda):
            body.append(ins(Op.CALL, statement.name))
            body.append(ins(Op.FORWARD))
        elif isinstance(statement, SendToHost):
            body.append(ins(Op.TO_HOST))
        elif isinstance(statement, Forward):
            body.append(ins(Op.FORWARD))
        elif isinstance(statement, Drop):
            body.append(ins(Op.DROP))
        else:
            raise TypeError(f"cannot lower statement {statement!r}")
