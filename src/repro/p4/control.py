"""Control blocks: the ingress logic of a Match+Lambda program.

This is the small AST behind Listing 3 in the paper::

    control ingress {
        if (valid(lambda_hdr)) {
            if (lambda_hdr.wId == WEB_SERVER_ID) { apply(web_server); ... }
            else { ... }
        } else { apply(send_pkt_to_host); }
    }

The AST can be executed directly (used by the gateway and in tests) or
lowered to NPU instructions (see :mod:`repro.p4.lowering`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .tables import Table

#: Verdicts produced by direct execution.
CTRL_FORWARD = "forward"
CTRL_DROP = "drop"
CTRL_TO_HOST = "to_host"
CTRL_FALLTHROUGH = "fallthrough"


class Statement:
    """Base class for control statements."""


@dataclass
class IfValid(Statement):
    """Branch on header presence (``valid(hdr)`` in P4)."""

    header: str
    then: List[Statement] = field(default_factory=list)
    orelse: List[Statement] = field(default_factory=list)


@dataclass
class IfFieldEq(Statement):
    """Branch on an exact header-field comparison."""

    header: str
    field_name: str
    value: Any
    then: List[Statement] = field(default_factory=list)
    orelse: List[Statement] = field(default_factory=list)


@dataclass
class ApplyTable(Statement):
    """Apply a match-action table."""

    table: Table


@dataclass
class InvokeLambda(Statement):
    """Call a lambda entry function, then forward its response."""

    name: str


@dataclass
class SendToHost(Statement):
    """Punt the packet to the host OS network stack."""


@dataclass
class Forward(Statement):
    """Forward (emit the response) immediately."""


@dataclass
class Drop(Statement):
    """Discard the packet."""


class ControlBlock:
    """An ordered list of statements with direct-execution semantics."""

    def __init__(self, statements: Optional[List[Statement]] = None,
                 name: str = "ingress") -> None:
        self.name = name
        self.statements = statements or []

    def execute(
        self,
        headers: Dict[str, Dict[str, Any]],
        meta: Dict[str, Any],
        invoke: Callable[[str], str],
    ) -> str:
        """Run the control logic; ``invoke(name)`` runs a lambda and
        returns its verdict. Returns the final packet verdict."""
        return self._run(self.statements, headers, meta, invoke)

    def _run(self, statements, headers, meta, invoke) -> str:
        for statement in statements:
            if isinstance(statement, IfValid):
                branch = (
                    statement.then
                    if statement.header in headers
                    else statement.orelse
                )
                verdict = self._run(branch, headers, meta, invoke)
                if verdict != CTRL_FALLTHROUGH:
                    return verdict
            elif isinstance(statement, IfFieldEq):
                header = headers.get(statement.header, {})
                hit = header.get(statement.field_name) == statement.value
                branch = statement.then if hit else statement.orelse
                verdict = self._run(branch, headers, meta, invoke)
                if verdict != CTRL_FALLTHROUGH:
                    return verdict
            elif isinstance(statement, ApplyTable):
                statement.table.lookup(headers, meta)
            elif isinstance(statement, InvokeLambda):
                verdict = invoke(statement.name)
                if verdict in (CTRL_DROP, CTRL_TO_HOST):
                    return verdict
                return CTRL_FORWARD
            elif isinstance(statement, SendToHost):
                return CTRL_TO_HOST
            elif isinstance(statement, Forward):
                return CTRL_FORWARD
            elif isinstance(statement, Drop):
                return CTRL_DROP
            else:
                raise TypeError(f"unknown statement {statement!r}")
        return CTRL_FALLTHROUGH

    def tables(self) -> List[Table]:
        """All tables applied anywhere in the block."""
        found: List[Table] = []

        def walk(statements):
            for statement in statements:
                if isinstance(statement, ApplyTable):
                    found.append(statement.table)
                elif isinstance(statement, (IfValid, IfFieldEq)):
                    walk(statement.then)
                    walk(statement.orelse)

        walk(self.statements)
        return found

    def invoked_lambdas(self) -> List[str]:
        """Names of lambdas reachable from this control block."""
        found: List[str] = []

        def walk(statements):
            for statement in statements:
                if isinstance(statement, InvokeLambda):
                    found.append(statement.name)
                elif isinstance(statement, (IfValid, IfFieldEq)):
                    walk(statement.then)
                    walk(statement.orelse)

        walk(self.statements)
        return found
