"""Mini-P4: parsers, match-action tables, control blocks, lowering."""

from .control import (
    ApplyTable,
    CTRL_DROP,
    CTRL_FALLTHROUGH,
    CTRL_FORWARD,
    CTRL_TO_HOST,
    ControlBlock,
    Drop,
    Forward,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
    Statement,
)
from .lowering import lower_control, lower_table_if_else, lower_table_naive
from .parser import CANONICAL_ORDER, ParserSpec, ParserState, generate_parser
from .pipeline import (
    P4Pipeline,
    build_dispatch_pipeline,
    make_route_table,
    merge_route_tables,
)
from .tables import Action, KeyField, P4Error, Table, TableEntry
from .textparser import P4TextParser, parse_control

__all__ = [
    "Action",
    "ApplyTable",
    "CANONICAL_ORDER",
    "CTRL_DROP",
    "CTRL_FALLTHROUGH",
    "CTRL_FORWARD",
    "CTRL_TO_HOST",
    "ControlBlock",
    "Drop",
    "Forward",
    "IfFieldEq",
    "IfValid",
    "InvokeLambda",
    "KeyField",
    "P4Error",
    "P4Pipeline",
    "P4TextParser",
    "ParserSpec",
    "ParserState",
    "SendToHost",
    "Statement",
    "Table",
    "TableEntry",
    "build_dispatch_pipeline",
    "generate_parser",
    "lower_control",
    "lower_table_if_else",
    "lower_table_naive",
    "make_route_table",
    "merge_route_tables",
    "parse_control",
]
