"""Textual P4 parser for match-stage snippets (paper Listing 3).

Users express the match stage in P4; this parser accepts the paper's
control-block subset — nested ``if (valid(hdr))`` / field comparisons
and ``apply(...)`` statements — and produces a
:class:`~repro.p4.control.ControlBlock`. The workload manager supplies
the constant bindings (``WEB_SERVER_ID`` etc., §4.1: IDs are assigned
at compile time and populated into the P4 code).

The paper's own Listing 3 parses verbatim::

    control ingress {
        if (valid(lambda_hdr)) {
            if (lambda_hdr.wId == WEB_SERVER_ID) {
                apply(web_server);
                apply(return_web_server_results);
            } else if (lambda_hdr.wId == OTHER_LAMBDA_ID) {
                apply(other_lambda);
                apply(return_other_lambda_results);
            }
        } else { apply(send_pkt_to_host); }
    }
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..microc.errors import ParseError
from ..microc.lexer import Token, tokenize
from .control import (
    ApplyTable,
    ControlBlock,
    Drop,
    Forward,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
    Statement,
)
from .tables import Table

#: The paper's header/field spellings mapped onto our header types.
DEFAULT_HEADER_ALIASES = {
    "lambda_hdr": "LambdaHeader",
    "rpc_hdr": "RpcHeader",
    "rdma_hdr": "RdmaHeader",
    "udp": "UDPHeader",
    "ipv4": "IPv4Header",
    "ethernet": "EthernetHeader",
}
DEFAULT_FIELD_ALIASES = {
    "wId": "wid",
    "reqId": "request_id",
    "isResponse": "is_response",
}

#: apply() targets with built-in meaning.
_SEND_TO_HOST = "send_pkt_to_host"
_DROP = "drop_pkt"


class P4TextParser:
    """Recursive-descent parser over the Micro-C tokenizer."""

    def __init__(
        self,
        source: str,
        constants: Optional[Dict[str, int]] = None,
        tables: Optional[Dict[str, Table]] = None,
        header_aliases: Optional[Dict[str, str]] = None,
        field_aliases: Optional[Dict[str, str]] = None,
    ) -> None:
        self.tokens: List[Token] = tokenize(source)
        self.position = 0
        self.constants = dict(constants or {})
        self.tables = dict(tables or {})
        self.header_aliases = dict(DEFAULT_HEADER_ALIASES)
        self.header_aliases.update(header_aliases or {})
        self.field_aliases = dict(DEFAULT_FIELD_ALIASES)
        self.field_aliases.update(field_aliases or {})

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message, token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            raise self.error(
                f"expected {(value or kind)!r}, got {self.current.value!r}"
            )
        return token

    # -- grammar ------------------------------------------------------------------

    def parse_control(self) -> ControlBlock:
        self.expect("ident", "control")
        name = self.expect("ident").value
        statements = self.parse_block()
        if not self.accept("eof"):
            raise self.error("trailing input after control block")
        return ControlBlock(statements, name=name)

    def parse_block(self) -> List[Statement]:
        self.expect("op", "{")
        statements: List[Statement] = []
        while not self.accept("op", "}"):
            if self.current.kind == "eof":
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        if self.accept("keyword", "if"):
            return self.parse_if()
        if self.accept("ident", "apply"):
            self.expect("op", "(")
            target = self.expect("ident").value
            self.expect("op", ")")
            self.expect("op", ";")
            return self.resolve_apply(target)
        raise self.error(f"unexpected statement {self.current.value!r}")

    def parse_if(self) -> Statement:
        self.expect("op", "(")
        statement = self.parse_condition()
        self.expect("op", ")")
        statement_then = self.parse_block()
        orelse: List[Statement] = []
        if self.accept("keyword", "else"):
            if self.accept("keyword", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        statement.then = statement_then
        statement.orelse = orelse
        return statement

    def parse_condition(self) -> Statement:
        if self.accept("ident", "valid"):
            self.expect("op", "(")
            header = self.resolve_header(self.expect("ident").value)
            self.expect("op", ")")
            return IfValid(header)
        # field comparison: hdr.field == CONSTANT (or literal number)
        header = self.resolve_header(self.expect("ident").value)
        self.expect("op", ".")
        field_token = self.expect("ident").value
        field_name = self.field_aliases.get(field_token, field_token)
        self.expect("op", "==")
        value = self.parse_value()
        return IfFieldEq(header, field_name, value)

    def parse_value(self) -> int:
        token = self.current
        if token.kind == "number":
            self.advance()
            return int(token.value, 0)
        if token.kind == "ident":
            self.advance()
            if token.value not in self.constants:
                raise ParseError(
                    f"unbound constant {token.value!r} (the workload "
                    "manager must supply lambda IDs)",
                    token.line, token.column,
                )
            return self.constants[token.value]
        raise self.error("expected a number or constant")

    # -- name resolution ---------------------------------------------------------------

    def resolve_header(self, name: str) -> str:
        resolved = self.header_aliases.get(name, name)
        from ..net.headers import header_class

        try:
            header_class(resolved)
        except KeyError:
            raise self.error(f"unknown header {name!r}") from None
        return resolved

    def resolve_apply(self, target: str) -> Statement:
        if target == _SEND_TO_HOST:
            return SendToHost()
        if target == _DROP:
            return Drop()
        if target.startswith("return_") and target.endswith("_results"):
            # Listing 3's response-emission actions.
            return Forward()
        if target in self.tables:
            return ApplyTable(self.tables[target])
        return InvokeLambda(target)


def parse_control(source: str, constants: Optional[Dict[str, int]] = None,
                  tables: Optional[Dict[str, Table]] = None,
                  **kwargs) -> ControlBlock:
    """Parse a textual P4 control block into a :class:`ControlBlock`."""
    return P4TextParser(source, constants=constants, tables=tables,
                        **kwargs).parse_control()
