"""P4 pipelines: parser + tables + control, plus the standard λ-NIC
dispatch pipeline built from a lambda-ID mapping (Listing 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .control import (
    ApplyTable,
    ControlBlock,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
)
from .parser import ParserSpec, generate_parser
from .tables import Action, Table


class P4Pipeline:
    """A parser plus ingress control block."""

    def __init__(self, parser: ParserSpec, control: ControlBlock) -> None:
        self.parser = parser
        self.control = control

    @property
    def tables(self) -> List[Table]:
        return self.control.tables()

    def __repr__(self) -> str:
        return (
            f"<P4Pipeline headers={len(self.parser.states)} "
            f"tables={len(self.tables)} lambdas={len(self.control.invoked_lambdas())}>"
        )


def make_route_table(name: str, wid: int, port: str) -> Table:
    """The naive per-lambda route-management table (paper §6.4).

    Each newly deployed lambda brings its own single-entry route table;
    match reduction later merges these into one shared table.
    """
    table = Table(
        name,
        keys=[("LambdaHeader", "wid")],
        actions=[Action("set_route", writes=("route_port",))],
    )
    table.add_entry((wid,), "set_route", {"route_port": port})
    return table


def merge_route_tables(tables: Sequence[Table], name: str = "routes") -> Table:
    """Match reduction: one table with per-entry parameter values."""
    merged = Table(
        name,
        keys=[("LambdaHeader", "wid")],
        actions=[Action("set_route", writes=("route_port",))],
        default_action=None,
    )
    for table in tables:
        for entry in table.entries:
            merged.add_entry(entry.key, "set_route", entry.params)
    return merged


def build_dispatch_pipeline(
    lambda_ids: Dict[str, int],
    headers_used: Sequence[str],
    route_ports: Optional[Dict[str, str]] = None,
    merged_routes: bool = False,
) -> P4Pipeline:
    """Build the Listing-3 dispatch pipeline.

    ``lambda_ids`` maps lambda name -> workload ID (assigned by the
    workload manager). In the naive pipeline every lambda carries its
    own route table; with ``merged_routes`` a single shared table is
    applied up front.
    """
    parser = generate_parser(headers_used)
    route_ports = route_ports or {}

    statements: List = []
    route_tables = [
        make_route_table(f"route_{name}", wid, route_ports.get(name, "p0"))
        for name, wid in lambda_ids.items()
    ]

    dispatch: List = []
    if merged_routes and route_tables:
        dispatch.append(ApplyTable(merge_route_tables(route_tables)))

    # Nested wid comparisons, innermost-first construction.
    chain: List = [SendToHost()]
    for index, (name, wid) in enumerate(sorted(lambda_ids.items(), key=lambda kv: kv[1])):
        then: List = []
        if not merged_routes:
            then.append(ApplyTable(route_tables[list(lambda_ids).index(name)]))
        then.append(InvokeLambda(name))
        chain = [IfFieldEq("LambdaHeader", "wid", wid, then=then, orelse=chain)]
    dispatch.extend(chain)

    statements.append(
        IfValid("LambdaHeader", then=dispatch, orelse=[SendToHost()])
    )
    return P4Pipeline(parser, ControlBlock(statements))
