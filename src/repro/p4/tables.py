"""Match-action tables (the "Match" of Match+Lambda).

Tables are declared P4-style — a key of header fields, entries mapping
key values to actions — and are either looked up directly (host-side
gateway) or lowered to if-else instruction sequences for NPU cores
(paper §5.1, "match reduction": NIC cores execute if-else chains more
efficiently than table lookups).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.headers import header_class


class P4Error(ValueError):
    """Raised for malformed P4 constructs."""


#: A key component: (header type name, field name).
KeyField = Tuple[str, str]


@dataclass
class Action:
    """A named action that writes metadata when a table entry matches."""

    name: str
    #: Metadata keys this action writes; entry params supply the values.
    writes: Tuple[str, ...] = ()

    def apply(self, params: Dict[str, Any], meta: Dict[str, Any]) -> None:
        for key in self.writes:
            if key not in params:
                raise P4Error(f"action {self.name!r} missing param {key!r}")
            meta[key] = params[key]


@dataclass
class TableEntry:
    """One row: key values (in key-field order) -> action + params."""

    key: Tuple[Any, ...]
    action: str
    params: Dict[str, Any] = field(default_factory=dict)


class Table:
    """A P4 match-action table with exact-match semantics."""

    def __init__(
        self,
        name: str,
        keys: Sequence[KeyField],
        actions: Sequence[Action],
        default_action: Optional[str] = None,
    ) -> None:
        if not keys:
            raise P4Error(f"table {name!r} needs at least one key field")
        self.name = name
        self.keys = list(keys)
        self.actions = {action.name: action for action in actions}
        self.default_action = default_action
        self.entries: List[TableEntry] = []
        self._validate_keys()

    def _validate_keys(self) -> None:
        for header_name, field_name in self.keys:
            cls = header_class(header_name)  # raises KeyError for unknown
            if field_name not in [f.name for f in dataclass_fields(cls)]:
                raise P4Error(
                    f"table {self.name!r}: {header_name} has no field {field_name!r}"
                )

    def add_entry(self, key: Sequence[Any], action: str,
                  params: Optional[Dict[str, Any]] = None) -> None:
        if len(key) != len(self.keys):
            raise P4Error(
                f"table {self.name!r}: entry key arity {len(key)} != {len(self.keys)}"
            )
        if action not in self.actions:
            raise P4Error(f"table {self.name!r}: unknown action {action!r}")
        self.entries.append(TableEntry(tuple(key), action, dict(params or {})))

    def lookup(
        self, headers: Dict[str, Dict[str, Any]], meta: Dict[str, Any]
    ) -> Optional[str]:
        """Exact-match the packet; apply the hit (or default) action.

        Returns the name of the action applied, or None on a total miss.
        """
        key = []
        for header_name, field_name in self.keys:
            header = headers.get(header_name)
            if header is None:
                key = None
                break
            key.append(header.get(field_name))
        if key is not None:
            key = tuple(key)
            for entry in self.entries:
                if entry.key == key:
                    self.actions[entry.action].apply(entry.params, meta)
                    return entry.action
        if self.default_action is not None:
            self.actions[self.default_action].apply({}, meta)
            return self.default_action
        return None

    @property
    def size(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        keys = ",".join(f"{h}.{f}" for h, f in self.keys)
        return f"<Table {self.name} key=({keys}) entries={self.size}>"
