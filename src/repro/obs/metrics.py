"""The typed metrics registry (single canonical implementation).

Counters, gauges, and histograms with label support, percentile and
ECDF queries, sim-time observation windows, and commutative merging.
``repro.serverless.metrics`` re-exports these types, so every consumer
(gateway, monitoring engine, NIC/host stats) shares one implementation
— the percentile logic that used to be duplicated (and re-sorted the
raw observation list on every call) now lives in :func:`percentile_of`
over a histogram-maintained sorted cache.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    return tuple(sorted((labels or {}).items()))


def percentile_of(sorted_data: List[float], q: float) -> float:
    """Nearest-rank percentile over already-sorted data; q in [0, 100].

    The one percentile implementation in the repository: histograms,
    load results, and experiment cells all funnel through here.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    if not sorted_data:
        return math.nan
    n = len(sorted_data)
    rank = max(0, min(n - 1, math.ceil(q / 100 * n) - 1))
    return sorted_data[rank]


class Counter:
    """Monotonically increasing count, optionally labelled."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def sum_matching(self, labels: Optional[Dict[str, str]] = None) -> float:
        """Sum over every labelset containing all the given pairs.

        :meth:`value` is an exact-labelset lookup; this aggregates over
        the remaining label dimensions — e.g. all ``reason`` values of
        one ``workload`` on a failure counter split by cause.
        """
        want = _labelset(labels)
        if not want:
            return self.total
        return sum(value for key, value in self._values.items()
                   if all(pair in key for pair in want))

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        """(labels dict, value) pairs for every labelset seen."""
        return [(dict(key), value) for key, value in self._values.items()]

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def copy(self) -> "Counter":
        """An independent counter with the same counts."""
        copied = Counter(self.name, self.help_text)
        copied._values = dict(self._values)
        return copied

    def merge(self, other: "Counter") -> "Counter":
        """A new counter with both operands' counts (commutative)."""
        merged = Counter(self.name, self.help_text or other.help_text)
        for source in (self, other):
            for key, value in source._values.items():
                merged._values[key] = merged._values.get(key, 0.0) + value
        return merged


class Gauge:
    """A value that can go up and down."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, labels: Optional[Dict[str, str]] = None) -> None:
        self._values[_labelset(labels)] = value

    def add(self, amount: float, labels: Optional[Dict[str, str]] = None) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        """(labels dict, value) pairs for every labelset seen."""
        return [(dict(key), value) for key, value in self._values.items()]

    def copy(self) -> "Gauge":
        """An independent gauge with the same values."""
        copied = Gauge(self.name, self.help_text)
        copied._values = dict(self._values)
        return copied

    def merge(self, other: "Gauge") -> "Gauge":
        """A new gauge summing both operands (commutative by design)."""
        merged = Gauge(self.name, self.help_text or other.help_text)
        for source in (self, other):
            for key, value in source._values.items():
                merged._values[key] = merged._values.get(key, 0.0) + value
        return merged


class CounterAttribute:
    """Descriptor: a registry Counter exposed as a plain numeric attribute.

    Lets legacy ``stats.requests_served += 1`` call sites stay intact
    while the value lives in a shared :class:`MetricsRegistry`. The
    owner instance must provide ``registry`` (a MetricsRegistry) and
    ``labels`` (a label dict or None). Assignment below the current
    value is rejected — counters are monotone.
    """

    def __init__(self, metric_name: str, help_text: str = "",
                 cast=int) -> None:
        self.metric_name = metric_name
        self.help_text = help_text
        self.cast = cast
        self.attr = metric_name

    def __set_name__(self, owner, name: str) -> None:
        self.attr = name

    def _counter(self, obj) -> Counter:
        return obj.registry.counter(self.metric_name, self.help_text)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self.cast(self._counter(obj).value(obj.labels))

    def __set__(self, obj, value) -> None:
        counter = self._counter(obj)
        delta = value - counter.value(obj.labels)
        if delta < 0:
            raise ValueError(
                f"{self.attr} is counter-backed and can only increase"
            )
        if delta:
            counter.inc(delta, labels=obj.labels)


class _Series:
    """One labelset's observations with a lazily maintained sort cache.

    Observations only ever append, so the cached sorted copy is valid
    exactly while its length matches the raw list — the check survives
    callers that append to the raw list directly (the NIC/host stats
    latency lists are such views).
    """

    __slots__ = ("values", "times", "_sorted", "_sorted_len")

    def __init__(self, timed: bool) -> None:
        self.values: List[float] = []
        self.times: Optional[List[float]] = [] if timed else None
        self._sorted: List[float] = []
        self._sorted_len = 0

    def sorted_values(self) -> List[float]:
        if self._sorted_len != len(self.values):
            self._sorted = sorted(self.values)
            self._sorted_len = len(self._sorted)
        return self._sorted


class Histogram:
    """Raw-observation histogram: percentiles, ECDF, windows, merge.

    With a ``clock`` (a zero-argument callable returning sim time, as
    wired by the registry) every observation is timestamped and
    percentile/count queries accept ``since``/``until`` sim-time
    windows — how the experiment drivers separate "during the fault
    storm" from "after".
    """

    def __init__(self, name: str, help_text: str = "",
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help_text = help_text
        self.clock = clock
        # Whether observations carry timestamps. Tracked separately from
        # the clock so a histogram that crossed a process boundary (clock
        # callables close over live Environments and are dropped by
        # __getstate__) still *merges* as a timed histogram.
        self._timed = clock is not None
        self._series: Dict[LabelSet, _Series] = {}

    def _get(self, labels: Optional[Dict[str, str]]) -> Optional[_Series]:
        return self._series.get(_labelset(labels))

    def _get_or_create(self, labels: Optional[Dict[str, str]]) -> _Series:
        key = _labelset(labels)
        series = self._series.get(key)
        if series is None:
            series = _Series(timed=self._timed)
            self._series[key] = series
        return series

    def observe(self, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        series = self._get_or_create(labels)
        series.values.append(value)
        if series.times is not None and self.clock is not None:
            series.times.append(self.clock())

    def raw(self, labels: Optional[Dict[str, str]] = None) -> List[float]:
        """The live observation list (a view, not a copy).

        Exists so legacy ``stats.latencies.append(...)`` call sites can
        be backed by the registry; appending through it bypasses the
        timestamp column, which windowed queries tolerate (untimed
        observations fall outside every window).
        """
        return self._get_or_create(labels).values

    def observations(self, labels: Optional[Dict[str, str]] = None) -> List[float]:
        series = self._get(labels)
        return list(series.values) if series else []

    def _windowed(self, series: _Series, since: Optional[float],
                  until: Optional[float]) -> List[float]:
        if since is None and until is None:
            return series.values
        if series.times is None:
            return []
        lo = -math.inf if since is None else since
        hi = math.inf if until is None else until
        times = series.times
        return [value for index, value in enumerate(series.values)
                if index < len(times) and lo <= times[index] <= hi]

    def count(self, labels: Optional[Dict[str, str]] = None,
              since: Optional[float] = None,
              until: Optional[float] = None) -> int:
        series = self._get(labels)
        if series is None:
            return 0
        return len(self._windowed(series, since, until))

    def mean(self, labels: Optional[Dict[str, str]] = None,
             since: Optional[float] = None,
             until: Optional[float] = None) -> float:
        series = self._get(labels)
        if series is None:
            return math.nan
        data = self._windowed(series, since, until)
        return sum(data) / len(data) if data else math.nan

    def percentile(self, q: float,
                   labels: Optional[Dict[str, str]] = None,
                   since: Optional[float] = None,
                   until: Optional[float] = None) -> float:
        """Nearest-rank percentile; q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        series = self._get(labels)
        if series is None:
            return math.nan
        if since is None and until is None:
            return percentile_of(series.sorted_values(), q)
        return percentile_of(sorted(self._windowed(series, since, until)), q)

    def ecdf(self, labels: Optional[Dict[str, str]] = None
             ) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs sorted by value."""
        series = self._get(labels)
        data = series.sorted_values() if series else []
        n = len(data)
        return [(value, (index + 1) / n) for index, value in enumerate(data)]

    def fraction_below(self, threshold: float,
                       labels: Optional[Dict[str, str]] = None) -> float:
        series = self._get(labels)
        data = series.sorted_values() if series else []
        if not data:
            return math.nan
        return bisect.bisect_right(data, threshold) / len(data)

    def copy(self) -> "Histogram":
        """An independent histogram with the same observations."""
        copied = Histogram(self.name, self.help_text, clock=self.clock)
        copied._timed = self._timed
        for key, series in self._series.items():
            target = _Series(timed=series.times is not None)
            target.values = list(series.values)
            if series.times is not None:
                target.times = list(series.times)
            copied._series[key] = target
        return copied

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram with both operands' observations.

        Commutative up to observation order: counts, percentiles, and
        ECDFs of ``a.merge(b)`` and ``b.merge(a)`` are identical.
        Timestamps are preserved only when both operands carry them
        (``_timed`` — which survives pickling even though the clock
        callable itself does not).
        """
        timed = self._timed and other._timed
        merged = Histogram(self.name, self.help_text or other.help_text,
                           clock=self.clock if timed else None)
        merged._timed = timed
        for source in (self, other):
            for key, series in source._series.items():
                target = merged._series.get(key)
                if target is None:
                    target = _Series(timed=timed)
                    merged._series[key] = target
                target.values.extend(series.values)
                if target.times is not None:
                    if series.times is not None and \
                            len(series.times) == len(series.values):
                        target.times.extend(series.times)
                    else:
                        target.times = None
        return merged

    def __getstate__(self):
        # Clock callables close over live simulation state (typically
        # ``lambda: env.now``) and cannot cross a process boundary; the
        # observations and the ``_timed`` flag are what shard workers
        # need to ship home.
        state = dict(self.__dict__)
        state["clock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


class MetricsRegistry:
    """Named registry of metrics, as scraped by the monitoring engine.

    ``clock`` (optional) timestamps histogram observations with
    simulated time, enabling windowed queries; pass ``lambda: env.now``
    or use :meth:`bind_clock` once an environment exists.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._metrics: Dict[str, object] = {}
        self._clock = clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach a sim-time clock (affects histograms created after)."""
        self._clock = clock

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = Histogram(name, help_text, clock=self._clock)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, name: str, cls, help_text: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def register(self, metric) -> None:
        """Adopt an existing metric object (shard-report assembly).

        The factory methods remain the normal path; this exists so
        aggregation code can rebuild a registry from copied metrics —
        e.g. stripping bulky histograms before shipping a shard's
        counters across a process boundary.
        """
        existing = self._metrics.get(metric.name)
        if existing is not None and existing is not metric:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def scrape(self) -> Dict[str, object]:
        """A snapshot view used by the monitoring engine / tests."""
        return dict(self._metrics)

    def copy(self) -> "MetricsRegistry":
        """An independent registry with copies of every metric."""
        copied = MetricsRegistry(clock=self._clock)
        for name, metric in self._metrics.items():
            copied._metrics[name] = metric.copy()
        return copied

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry merging both operands metric-by-metric.

        Metrics present in both registries must share a type (their
        own ``merge`` combines them — commutative for counters, gauges,
        and histograms alike); one-sided metrics are copied. Iteration
        is name-sorted so the merged registry's internal order — and
        therefore any serialized report built from it — is independent
        of insertion order on either side.
        """
        merged = MetricsRegistry(clock=self._clock or other._clock)
        for name in sorted(set(self._metrics) | set(other._metrics)):
            mine = self._metrics.get(name)
            theirs = other._metrics.get(name)
            if mine is not None and theirs is not None:
                if type(mine) is not type(theirs):
                    raise TypeError(
                        f"metric {name!r} is {type(mine).__name__} on one "
                        f"side, {type(theirs).__name__} on the other"
                    )
                merged._metrics[name] = mine.merge(theirs)
            else:
                present = mine if mine is not None else theirs
                merged._metrics[name] = present.copy()
        return merged

    @classmethod
    def merge_all(cls, registries) -> "MetricsRegistry":
        """Fold any iterable of registries into one (the shard path).

        ``merge_all([])`` is an empty registry; a single registry is
        copied, never aliased, so callers can mutate the result freely.
        """
        merged = cls()
        for registry in registries:
            merged = merged.merge(registry)
        return merged

    def __getstate__(self):
        # The registry-level clock is a live-sim closure too (see
        # Histogram.__getstate__); metrics pickle themselves.
        state = dict(self.__dict__)
        state["_clock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
