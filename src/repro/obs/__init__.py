"""Observability: structured tracing, typed metrics, trace export.

``repro.obs`` is the seeing-eye of the reproduction: spans record
where simulated time goes inside every request (gateway -> wire ->
NIC/host -> back), the metrics registry is the single home for
counters/gauges/histograms across the stack, and the exporters turn a
run into a Perfetto-loadable artifact. Tracing is opt-in per
environment (``env.tracer``), costs nothing when off, and never
perturbs the simulation when on.
"""

from .export import (
    TraceCollection,
    chrome_events,
    span_records,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    CounterAttribute,
    Gauge,
    Histogram,
    LabelSet,
    MetricsRegistry,
    percentile_of,
)
from .tracer import (
    META_KEY,
    Span,
    Tracer,
    check_invariants,
    children_index,
    coverage_of,
    roots,
    spans_by_trace,
    trace_digest,
    tree_shape,
)

__all__ = [
    "META_KEY",
    "Counter",
    "CounterAttribute",
    "Gauge",
    "Histogram",
    "LabelSet",
    "MetricsRegistry",
    "Span",
    "TraceCollection",
    "Tracer",
    "check_invariants",
    "children_index",
    "chrome_events",
    "coverage_of",
    "percentile_of",
    "roots",
    "span_records",
    "spans_by_trace",
    "trace_digest",
    "tree_shape",
    "write_chrome_trace",
]
