"""Trace exporters: Chrome ``trace_event`` JSON and flat JSONL.

The Chrome format loads directly into Perfetto (ui.perfetto.dev) or
``chrome://tracing``: each simulated node becomes a process row and
each trace (one user request) a thread row, so a request's hops line
up left-to-right across the components it visited. The JSONL export is
one span per line for ad-hoc ``jq``/pandas analysis.

Sim time is in seconds; Chrome wants microseconds, so timestamps are
scaled by 1e6.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .tracer import Span, Tracer

#: Sim seconds -> Chrome trace microseconds.
_US = 1e6


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_events(spans: List[Span], pid_offset: int = 0,
                  label: str = "") -> List[Dict[str, Any]]:
    """Chrome ``trace_event`` dicts (complete 'X' + instant 'i' events).

    ``pid_offset``/``label`` let multiple independent simulations (one
    per experiment cell) coexist in a single file without colliding
    process ids.
    """
    nodes = sorted({span.node or "(none)" for span in spans})
    pids = {node: pid_offset + index + 1 for index, node in enumerate(nodes)}
    events: List[Dict[str, Any]] = []
    for node, pid in pids.items():
        name = f"{label}:{node}" if label else node
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for span in spans:
        if span.end is None:
            continue
        args = {key: _jsonable(value) for key, value in sorted(span.tags.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "span",
            "pid": pids[span.node or "(none)"],
            "tid": span.trace_id,
            "ts": span.start * _US,
            "args": args,
        }
        if span.end > span.start:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * _US
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return events


def span_records(spans: List[Span], label: str = "") -> List[Dict[str, Any]]:
    """Flat dicts (one per finished span) for the JSONL export."""
    records = []
    for span in spans:
        if span.end is None:
            continue
        record: Dict[str, Any] = {
            "span_id": span.span_id,
            "trace_id": span.trace_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "category": span.category,
            "node": span.node,
            "start": span.start,
            "end": span.end,
            "tags": {key: _jsonable(value)
                     for key, value in sorted(span.tags.items())},
        }
        if label:
            record["run"] = label
        records.append(record)
    return records


class TraceCollection:
    """Traces from one or more simulations, exported as one artifact.

    Experiment drivers that build a fresh testbed per cell (fig6 runs
    nine) add each cell's tracer under a label; the Chrome export keeps
    them apart via per-run process ids.
    """

    #: Process-id stride between runs (few simulations have more nodes).
    PID_STRIDE = 1000

    def __init__(self) -> None:
        self.runs: List[Tuple[str, List[Span]]] = []

    def add(self, label: str, tracer_or_spans) -> None:
        spans = (tracer_or_spans.spans
                 if isinstance(tracer_or_spans, Tracer) else tracer_or_spans)
        self.runs.append((label, list(spans)))

    def extend(self, other: "TraceCollection") -> None:
        """Concatenate another collection's runs onto this one.

        The shard aggregation path: each worker ships its own
        collection home (spans are plain picklable dataclasses) and the
        parent folds them in shard order, so the combined artifact is
        reproducible run-to-run.
        """
        for label, spans in other.runs:
            self.runs.append((label, list(spans)))

    @property
    def n_spans(self) -> int:
        return sum(len(spans) for _, spans in self.runs)

    def spans_for(self, label: str) -> List[Span]:
        for run_label, spans in self.runs:
            if run_label == label:
                return spans
        raise KeyError(f"no trace run labelled {label!r}")

    def labels(self) -> List[str]:
        return [label for label, _ in self.runs]

    def to_chrome(self) -> Dict[str, Any]:
        events: List[Dict[str, Any]] = []
        for index, (label, spans) in enumerate(self.runs):
            events.extend(chrome_events(
                spans, pid_offset=index * self.PID_STRIDE, label=label,
            ))
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def write_chrome(self, path: str) -> None:
        """Write a Perfetto-loadable Chrome trace JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, separators=(",", ":"))
            fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        """Write one finished span per line (flat JSON records)."""
        with open(path, "w", encoding="utf-8") as fh:
            for label, spans in self.runs:
                for record in span_records(spans, label=label):
                    fh.write(json.dumps(record, separators=(",", ":")))
                    fh.write("\n")


def write_chrome_trace(spans: List[Span], path: str) -> None:
    """One-shot Chrome export for a single tracer's spans."""
    collection = TraceCollection()
    collection.add("", spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": chrome_events(spans),
                   "displayTimeUnit": "ns"}, fh, separators=(",", ":"))
        fh.write("\n")
