"""Structured tracing: sim-time spans across every hop of a request.

A :class:`Tracer` records :class:`Span` objects — named intervals of
simulated time with parent links, a component category, and free-form
tags — plus zero-duration *instant* events (faults, elections,
failover actions). Components find the tracer on their
``Environment`` (``env.tracer``); when it is ``None`` (the default)
instrumentation reduces to one attribute load and a ``None`` check, so
tracing is zero-cost when disabled and — crucially — never schedules
events or consumes randomness, so a traced run is behaviourally
identical to an untraced one (see tests/experiments/
test_trace_differential.py).

Trace context crosses the simulated network in ``packet.meta["trace"]``
as a ``(trace_id, parent_span_id)`` pair: the gateway opens a root span
per user request and stamps outgoing packets; links, switches, NICs,
hosts, and services attach their spans underneath, so one request's
full journey reassembles into a single tree.

Module-level helpers analyse finished traces: tree indices, invariant
checking (child interval inside parent, no orphan parents), root
coverage (what fraction of a request's end-to-end time its descendant
spans account for), shape summaries, and a deterministic digest used by
the golden-trace regression tests.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Dict, List, Optional, Tuple

TraceContext = Tuple[int, Optional[int]]

#: ``packet.meta`` key carrying the (trace_id, parent_span_id) pair.
META_KEY = "trace"


class Span:
    """One named interval of simulated time.

    ``end`` is ``None`` while the span is open; instants have
    ``end == start``.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "category",
                 "node", "start", "end", "tags")

    def __init__(self, span_id: int, trace_id: int, parent_id: Optional[int],
                 name: str, category: str, node: str, start: float,
                 end: Optional[float] = None,
                 tags: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end = end
        self.tags: Dict[str, Any] = tags if tags is not None else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.9f}" if self.end is not None else "open"
        return (f"<Span #{self.span_id} {self.name} trace={self.trace_id} "
                f"[{self.start:.9f}..{end}] node={self.node}>")


class Tracer:
    """Collects spans against one environment's simulated clock."""

    def __init__(self, env, max_spans: int = 2_000_000) -> None:
        self.env = env
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- recording ---------------------------------------------------------

    def new_trace(self) -> int:
        """A fresh trace id (one per user-visible request)."""
        return next(self._trace_ids)

    def begin(self, name: str, category: str = "", trace_id: int = 0,
              parent: Any = None, node: str = "",
              start: Optional[float] = None,
              tags: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Open a span; ``parent`` is a Span, a span id, or None.

        ``start`` defaults to the current sim time; pass an earlier
        time to account queueing that began before the span could be
        attributed (e.g. an NPU thread grant).
        """
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return None
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            next(self._span_ids), trace_id, parent_id, name, category,
            node, self.env.now if start is None else start, None, tags,
        )
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span],
            tags: Optional[Dict[str, Any]] = None) -> None:
        """Close ``span`` at the current sim time (None-safe)."""
        if span is None:
            return
        span.end = self.env.now
        if tags:
            span.tags.update(tags)

    def instant(self, name: str, category: str = "", trace_id: int = 0,
                parent: Any = None, node: str = "",
                tags: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """A zero-duration event (fault fired, leader elected, ...)."""
        span = self.begin(name, category, trace_id, parent, node, tags=tags)
        if span is not None:
            span.end = span.start
        return span

    # -- packet context ----------------------------------------------------

    @staticmethod
    def stamp_packet(packet, span: Optional[Span]) -> None:
        """Attach ``span``'s context to a packet about to be sent."""
        if span is not None:
            packet.meta[META_KEY] = (span.trace_id, span.span_id)

    @staticmethod
    def propagate(source_packet, target_packet) -> None:
        """Copy trace context from a request onto its response."""
        ctx = source_packet.meta.get(META_KEY)
        if ctx is not None:
            target_packet.meta[META_KEY] = ctx

    @staticmethod
    def context(packet) -> TraceContext:
        """The (trace_id, parent_span_id) carried by ``packet``."""
        ctx = packet.meta.get(META_KEY)
        return ctx if ctx is not None else (0, None)


# -- trace analysis ---------------------------------------------------------


def spans_by_trace(spans: List[Span]) -> Dict[int, List[Span]]:
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    return by_trace


def roots(spans: List[Span]) -> List[Span]:
    """Spans with no parent (one per traced request, plus singletons)."""
    return [span for span in spans if span.parent_id is None]


def children_index(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def check_invariants(spans: List[Span]) -> List[str]:
    """Structural violations in a finished trace (empty == healthy).

    Checks: every span finished with ``end >= start``; no orphan
    parent ids; parent and child share a trace id; child intervals lie
    inside their parent's interval.
    """
    violations = []
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.end is None:
            violations.append(f"span #{span.span_id} {span.name} never ended")
            continue
        if span.end < span.start:
            violations.append(
                f"span #{span.span_id} {span.name} ends before it starts"
            )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            violations.append(
                f"span #{span.span_id} {span.name} has orphan parent "
                f"#{span.parent_id}"
            )
            continue
        if parent.trace_id != span.trace_id:
            violations.append(
                f"span #{span.span_id} {span.name} crosses traces "
                f"({span.trace_id} under {parent.trace_id})"
            )
        if parent.end is not None and (
                span.start < parent.start or span.end > parent.end):
            violations.append(
                f"span #{span.span_id} {span.name} "
                f"[{span.start}..{span.end}] escapes parent "
                f"#{parent.span_id} {parent.name} "
                f"[{parent.start}..{parent.end}]"
            )
    return violations


def coverage_of(root: Span, spans: List[Span]) -> float:
    """Fraction of ``root``'s interval covered by its trace's spans.

    The union of every *other* finished span in the same trace is
    intersected with the root interval; a zero-duration root counts as
    fully covered. This is the "no unaccounted gaps" acceptance check:
    if a request spends time somewhere no component opened a span, the
    coverage drops below 1.
    """
    if root.end is None:
        raise ValueError("root span still open")
    total = root.end - root.start
    if total <= 0:
        return 1.0
    intervals = []
    for span in spans:
        if span is root or span.trace_id != root.trace_id:
            continue
        if span.end is None:
            continue
        lo = max(span.start, root.start)
        hi = min(span.end, root.end)
        if hi > lo:
            intervals.append((lo, hi))
    intervals.sort()
    covered = 0.0
    cursor = root.start
    for lo, hi in intervals:
        if hi <= cursor:
            continue
        covered += hi - max(lo, cursor)
        cursor = hi
    return covered / total


def tree_shape(spans: List[Span]) -> Dict[str, int]:
    """Span-name and parent>child edge counts (a trace's 'shape').

    The golden tests compare this alongside the exact digest so a
    mismatch report says *what* changed, not just that something did.
    """
    by_id = {span.span_id: span for span in spans}
    shape: Dict[str, int] = {}
    for span in spans:
        shape[span.name] = shape.get(span.name, 0) + 1
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            edge = f"{parent.name}>{span.name}"
            shape[edge] = shape.get(edge, 0) + 1
    return shape


def trace_digest(spans: List[Span]) -> str:
    """Deterministic sha256 over the full trace, exact times included.

    Spans are canonicalised (sorted by trace, start time, id; parents
    referenced by their position-independent name-path) so the digest
    is a pure function of the simulation, not of Python object
    identity. Same seed, same code => same digest.
    """
    by_id = {span.span_id: span for span in spans}

    def path(span: Span) -> str:
        names = []
        seen = set()
        cursor: Optional[Span] = span
        while cursor is not None and cursor.span_id not in seen:
            seen.add(cursor.span_id)
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
        return "/".join(reversed(names))

    lines = []
    for span in spans:
        tags = ",".join(f"{key}={span.tags[key]!r}"
                        for key in sorted(span.tags))
        lines.append(
            f"{span.trace_id}|{path(span)}|{span.category}|{span.node}|"
            f"{span.start!r}|{span.end!r}|{tags}"
        )
    lines.sort()
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
