"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a script of timed :class:`FaultEvent` entries:
*at second 30 kill m2's NIC, at 45 flap m3's link for 2 s, at 60 crash
the Raft leader...* The plan is pure data — building one touches
nothing; the :class:`~repro.faults.injector.FaultInjector` replays it
against a live testbed. Because events are ordered by (time, insertion
order) and every fault hook in the simulator is deterministic, two runs
of the same plan on the same seed produce identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: Every action a plan may contain, and what ``target`` means for it.
ACTIONS = {
    "kill_nic": "SmartNIC node name (whole NIC loses power)",
    "restore_nic": "SmartNIC node name",
    "kill_island": "SmartNIC node name (params: island)",
    "restore_island": "SmartNIC node name (params: island)",
    "crash_server": "host worker node name",
    "restart_server": "host worker node name (params: reboot_seconds)",
    "link_down": "node whose cable to the switch is cut",
    "link_up": "node whose cable is restored",
    "partition": "- (params: groups = list of node-name lists)",
    "heal": "- (remove any switch partition)",
    "crash_raft": "Raft node name, or 'leader' resolved at fire time",
    "recover_raft": "Raft node name",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or repair) action."""

    at: float
    action: str
    target: str = ""
    params: Tuple[Tuple[str, object], ...] = ()
    #: Insertion order; ties on ``at`` fire in the order they were added.
    seq: int = 0

    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)

    def sort_key(self) -> Tuple[float, int]:
        return (self.at, self.seq)


class FaultPlan:
    """A chainable builder for a fault schedule.

    >>> plan = (FaultPlan()
    ...         .kill_nic(30.0, "m2-nic")
    ...         .link_flap(45.0, "m3-nic", down_for=2.0)
    ...         .crash_raft(60.0, "leader")
    ...         .restore_nic(75.0, "m2-nic"))
    """

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []

    # -- generic -----------------------------------------------------------

    def add(self, at: float, action: str, target: str = "",
            **params) -> "FaultPlan":
        if at < 0:
            raise ValueError("fault time must be non-negative")
        if action not in ACTIONS:
            raise ValueError(
                f"unknown action {action!r} (know {sorted(ACTIONS)})"
            )
        self._events.append(FaultEvent(
            at=at, action=action, target=target,
            params=tuple(sorted(params.items())), seq=len(self._events),
        ))
        return self

    # -- SmartNIC / NPU islands (repro.hw) ---------------------------------

    def kill_nic(self, at: float, nic: str) -> "FaultPlan":
        return self.add(at, "kill_nic", nic)

    def restore_nic(self, at: float, nic: str) -> "FaultPlan":
        return self.add(at, "restore_nic", nic)

    def kill_island(self, at: float, nic: str, island: int) -> "FaultPlan":
        return self.add(at, "kill_island", nic, island=island)

    def restore_island(self, at: float, nic: str, island: int) -> "FaultPlan":
        return self.add(at, "restore_island", nic, island=island)

    # -- host workers (repro.host) -----------------------------------------

    def crash_server(self, at: float, server: str) -> "FaultPlan":
        return self.add(at, "crash_server", server)

    def restart_server(self, at: float, server: str,
                       reboot_seconds: float = 1.0) -> "FaultPlan":
        return self.add(at, "restart_server", server,
                        reboot_seconds=reboot_seconds)

    # -- network (repro.net) -----------------------------------------------

    def link_down(self, at: float, node: str) -> "FaultPlan":
        return self.add(at, "link_down", node)

    def link_up(self, at: float, node: str) -> "FaultPlan":
        return self.add(at, "link_up", node)

    def link_flap(self, at: float, node: str,
                  down_for: float = 1.0) -> "FaultPlan":
        """Cut a cable at ``at`` and restore it ``down_for`` later."""
        if down_for <= 0:
            raise ValueError("down_for must be positive")
        return self.link_down(at, node).link_up(at + down_for, node)

    def partition(self, at: float, *groups) -> "FaultPlan":
        """Split the switch into isolated groups of node names."""
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        return self.add(at, "partition",
                        groups=tuple(tuple(g) for g in groups))

    def heal(self, at: float) -> "FaultPlan":
        return self.add(at, "heal")

    # -- Raft / etcd (repro.raft) ------------------------------------------

    def crash_raft(self, at: float, node: str = "leader") -> "FaultPlan":
        """Crash a Raft node; ``"leader"`` is resolved when it fires."""
        return self.add(at, "crash_raft", node)

    def recover_raft(self, at: float, node: str) -> "FaultPlan":
        return self.add(at, "recover_raft", node)

    # -- reading the plan --------------------------------------------------

    @property
    def events(self) -> List[FaultEvent]:
        """Events in deterministic firing order."""
        return sorted(self._events, key=FaultEvent.sort_key)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0.0 for an empty plan)."""
        return max((e.at for e in self._events), default=0.0)
