"""The fault injector: replays a :class:`FaultPlan` against a testbed.

One simulation process walks the plan's events in deterministic order,
sleeping between fire times and dispatching each action to the right
subsystem hook (``SmartNIC.fail``, ``HostServer.crash``,
``Network.set_link_state``, ``EtcdCluster.crash`` ...). Every action is
appended to :attr:`FaultInjector.trace` as ``(time, action, target)``,
which is what the reproducibility check compares across same-seed runs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim import Environment
from .plan import FaultEvent, FaultPlan


class FaultInjector:
    """Drives a testbed through a scripted fault storm."""

    def __init__(self, env: Environment, testbed, plan: FaultPlan,
                 metrics=None) -> None:
        self.env = env
        self.testbed = testbed
        self.plan = plan
        #: (sim time, action, resolved target) per fired event.
        self.trace: List[Tuple[float, str, str]] = []
        #: Events that could not be applied (e.g. crash_raft with no
        #: leader elected yet) — they are skipped, not fatal.
        self.skipped: List[Tuple[float, str, str]] = []
        self.faults_injected_total = None
        if metrics is not None:
            self.faults_injected_total = metrics.counter(
                "faults_injected_total", "fault events fired, by action",
            )
        self._started = False
        self._listeners: List[Callable[[float, str, str], None]] = []

    def subscribe(self, listener: Callable[[float, str, str], None]) -> None:
        """Call ``listener(at, action, target)`` for every fired event.

        This is how runtime policies (e.g. the migration policy) see
        faults as they land, instead of polling the trace. Listeners
        must not schedule simulation events.
        """
        self._listeners.append(listener)

    def start(self):
        """Process: fire every plan event at its scheduled time."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        return self.env.process(self._run())

    def _run(self):
        for event in self.plan.events:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._fire(event)
        if False:  # pragma: no cover - keep this a generator when empty
            yield

    # -- dispatch ----------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_do_{event.action}", None)
        if handler is None:  # unreachable: FaultPlan validates actions
            raise ValueError(f"unknown action {event.action!r}")
        target = handler(event)
        if target is None:
            self.skipped.append((self.env.now, event.action, event.target))
            return
        self.trace.append((self.env.now, event.action, target))
        for listener in self._listeners:
            listener(self.env.now, event.action, target)
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "fault.injected", "fault", node=target,
                tags={"action": event.action},
            )
        if self.faults_injected_total is not None:
            self.faults_injected_total.inc(labels={"action": event.action})

    # Each _do_* returns the resolved target name, or None to skip.

    def _do_kill_nic(self, event: FaultEvent) -> Optional[str]:
        self.testbed.nic(event.target).fail()
        return event.target

    def _do_restore_nic(self, event: FaultEvent) -> Optional[str]:
        self.testbed.nic(event.target).restore()
        return event.target

    def _do_kill_island(self, event: FaultEvent) -> Optional[str]:
        island = event.kwargs["island"]
        self.testbed.nic(event.target).fail_island(island)
        return f"{event.target}/island{island}"

    def _do_restore_island(self, event: FaultEvent) -> Optional[str]:
        island = event.kwargs["island"]
        self.testbed.nic(event.target).restore_island(island)
        return f"{event.target}/island{island}"

    def _do_crash_server(self, event: FaultEvent) -> Optional[str]:
        self.testbed.host_server(event.target).crash()
        return event.target

    def _do_restart_server(self, event: FaultEvent) -> Optional[str]:
        self.testbed.host_server(event.target).restart(**event.kwargs)
        return event.target

    def _do_link_down(self, event: FaultEvent) -> Optional[str]:
        self.testbed.network.set_link_state(event.target, up=False)
        return event.target

    def _do_link_up(self, event: FaultEvent) -> Optional[str]:
        self.testbed.network.set_link_state(event.target, up=True)
        return event.target

    def _do_partition(self, event: FaultEvent) -> Optional[str]:
        groups = event.kwargs["groups"]
        self.testbed.network.partition(*groups)
        return "|".join(",".join(g) for g in groups)

    def _do_heal(self, event: FaultEvent) -> Optional[str]:
        self.testbed.network.heal_partition()
        return "-"

    def _do_crash_raft(self, event: FaultEvent) -> Optional[str]:
        cluster = self.testbed.etcd_cluster
        if cluster is None:
            return None
        name = event.target
        if name == "leader":
            leader = cluster.leader()
            if leader is None:
                return None  # no leader to kill right now
            name = leader.name
        cluster.crash(name)
        return name

    def _do_recover_raft(self, event: FaultEvent) -> Optional[str]:
        cluster = self.testbed.etcd_cluster
        if cluster is None:
            return None
        cluster.recover(event.target)
        return event.target
