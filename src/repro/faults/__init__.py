"""Deterministic fault injection for the λ-NIC testbed.

Declarative :class:`FaultPlan` schedules (kill NICs and NPU islands,
crash host workers, flap links, partition the switch, crash Raft
nodes), replayed by a :class:`FaultInjector` process. Same seed + same
plan => identical event traces.
"""

from .injector import FaultInjector
from .plan import ACTIONS, FaultEvent, FaultPlan

__all__ = ["ACTIONS", "FaultEvent", "FaultInjector", "FaultPlan"]
