"""A standalone memcached client (for tests, examples, warm-up)."""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RpcHeader,
    UDPHeader,
)
from ..net.network import Node
from ..sim import Environment
from .server import STATUS_OK


class MemcachedClient:
    """Issues GET/SET/DEL RPCs and matches responses by request id."""

    def __init__(self, env: Environment, node: Node, server: str,
                 timeout: float = 0.05, retries: int = 3) -> None:
        self.env = env
        self.node = node
        self.server = server
        self.timeout = timeout
        self.retries = retries
        self._ids = itertools.count(1)
        self._waiting: Dict[int, object] = {}
        node.attach(self._receive)

    def _receive(self, packet: Packet) -> None:
        lam = packet.headers.get("LambdaHeader")
        if lam is None or not lam.is_response:
            return
        waiter = self._waiting.pop(lam.request_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(packet)

    def _request(self, method: str, key: str, payload: bytes = b""):
        request_id = next(self._ids)
        attempt = 0
        while True:
            attempt += 1
            waiter = self.env.event()
            self._waiting[request_id] = waiter
            self.node.send(Packet(
                src=self.node.name, dst=self.server,
                headers=HeaderStack([
                    EthernetHeader(),
                    IPv4Header(),
                    UDPHeader(),
                    LambdaHeader(request_id=request_id),
                    RpcHeader(method=method, key=key),
                ]),
                payload=payload,
                payload_bytes=max(len(payload), 32),
            ))
            outcome = yield self.env.any_of(
                [waiter, self.env.timeout(self.timeout, value=None)]
            )
            if waiter in outcome:
                return waiter.value
            self._waiting.pop(request_id, None)
            if attempt > self.retries:
                raise TimeoutError(f"memcached {method} {key!r} timed out")

    # All return processes whose value is (status, payload_bytes_obj).

    def set(self, key: str, value: bytes):
        def run():
            response = yield from self._request("SET", key, value)
            return response.headers.require("RpcHeader").status

        return self.env.process(run())

    def get(self, key: str):
        def run():
            response = yield from self._request("GET", key)
            status = response.headers.require("RpcHeader").status
            value = response.payload if status == STATUS_OK else None
            return status, value

        return self.env.process(run())

    def delete(self, key: str):
        def run():
            response = yield from self._request("DEL", key)
            return response.headers.require("RpcHeader").status

        return self.env.process(run())
