"""A memcached-like cache server (the testbed's memcached on M1).

Serves GET/SET/DEL over the simulated network with a small service
time per request (hash lookup plus per-byte copy cost). The key-value
client lambdas (§6.2b) generate traffic against this server from both
host backends and λ-NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..net import (
    DEADLINE_META,
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RpcHeader,
    UDPHeader,
)
from ..net.network import Node
from ..obs import Tracer
from ..sim import Environment

#: RpcHeader.status codes.
STATUS_OK = 0
STATUS_MISS = 1
STATUS_ERROR = 2


@dataclass
class CacheStats:
    gets: int = 0
    sets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    bytes_stored: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemcachedServer:
    """An in-memory cache with request/response packet semantics."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        base_service_seconds: float = 6e-6,
        per_kib_seconds: float = 0.4e-6,
        capacity_bytes: int = 1024 * 1024 * 1024,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.base_service_seconds = base_service_seconds
        self.per_kib_seconds = per_kib_seconds
        self.capacity_bytes = capacity_bytes
        self.data: Dict[str, bytes] = {}
        self.stats = CacheStats()
        node.attach(self.receive)

    def receive(self, packet: Packet) -> None:
        rpc = packet.headers.get("RpcHeader")
        if rpc is None:
            return
        self.env.process(self._serve(packet, rpc))

    def _serve(self, packet: Packet, rpc) -> Any:
        method = rpc.method.upper()
        key = rpc.key
        payload_bytes = packet.payload_bytes
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            trace_id, parent = Tracer.context(packet)
            if trace_id:
                span = tracer.begin(
                    "kv.serve", "kv", trace_id=trace_id, parent=parent,
                    node=self.name, tags={"method": method},
                )
        yield self.env.timeout(
            self.base_service_seconds
            + self.per_kib_seconds * payload_bytes / 1024.0
        )
        status = STATUS_OK
        value: bytes = b""
        if method == "GET":
            self.stats.gets += 1
            stored = self.data.get(key)
            if stored is None:
                self.stats.misses += 1
                status = STATUS_MISS
            else:
                self.stats.hits += 1
                value = stored
        elif method == "SET":
            self.stats.sets += 1
            blob = packet.payload if isinstance(packet.payload, (bytes, bytearray)) \
                else b"\x00" * payload_bytes
            if self._stored_bytes() + len(blob) > self.capacity_bytes:
                self._evict(len(blob))
            self.data[key] = bytes(blob)
            self.stats.bytes_stored = self._stored_bytes()
        elif method == "DEL" or method == "DELETE":
            self.stats.deletes += 1
            if self.data.pop(key, None) is None:
                status = STATUS_MISS
        else:
            status = STATUS_ERROR
        if span is not None:
            tracer.end(span, tags={"status": status})
        self._respond(packet, status, value)

    def _stored_bytes(self) -> int:
        return sum(len(value) for value in self.data.values())

    def _evict(self, needed: int) -> None:
        """FIFO eviction until ``needed`` bytes fit."""
        for key in list(self.data):
            if self._stored_bytes() + needed <= self.capacity_bytes:
                break
            del self.data[key]

    def _respond(self, request: Packet, status: int, value: bytes) -> None:
        lam = request.headers.get("LambdaHeader")
        response = Packet(
            src=self.name,
            dst=request.src,
            headers=HeaderStack([
                EthernetHeader(),
                IPv4Header(src_ip=self.name, dst_ip=request.src),
                UDPHeader(),
                LambdaHeader(
                    wid=lam.wid if lam else 0,
                    request_id=lam.request_id if lam else 0,
                    is_response=True,
                ),
                RpcHeader(method="RESP", key="", status=status),
            ]),
            payload=value,
            payload_bytes=max(len(value), 16),
        )
        # Deadline propagation: the reply inherits the request's
        # deadline so the caller's response pass can drop dead work.
        deadline = request.meta.get(DEADLINE_META)
        if deadline is not None:
            response.meta[DEADLINE_META] = deadline
        Tracer.propagate(request, response)
        self.node.send(response)
