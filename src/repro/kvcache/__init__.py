"""memcached-like cache server and client."""

from .client import MemcachedClient
from .server import CacheStats, MemcachedServer, STATUS_ERROR, STATUS_MISS, STATUS_OK

__all__ = [
    "CacheStats",
    "MemcachedClient",
    "MemcachedServer",
    "STATUS_ERROR",
    "STATUS_MISS",
    "STATUS_OK",
]
