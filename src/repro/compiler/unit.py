"""Compilation units: lambdas + dispatch metadata -> one firmware program.

The workload manager pairs Micro-C lambdas with the P4 match stage into
a single Match+Lambda program (paper §4.1). Here that composition is a
:class:`CompilationUnit`: the set of lambda programs, their assigned
workload IDs, and routing info. ``build_program`` materialises the
whole-firmware :class:`~repro.isa.program.LambdaProgram` — parser, match
dispatch, and namespaced lambda code — which every NPU core runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..isa import Function, Instruction, LambdaProgram, Op, ins
from ..isa.analysis import headers_used as analyse_headers
from ..p4 import build_dispatch_pipeline, lower_control
from ..p4.parser import generate_parser

#: Name of the composed firmware entry point.
FIRMWARE_ENTRY = "main"
#: Namespace separator for lambda-private functions and objects.
SEP = "."


class CompileError(Exception):
    """Raised when composition or resource checks fail."""


def qualify(lambda_name: str, inner: str) -> str:
    return f"{lambda_name}{SEP}{inner}"


def rewrite_instruction(
    instruction: Instruction,
    function_map: Dict[str, str],
    object_map: Dict[str, str],
) -> Instruction:
    """Rename call targets and memory-object references."""
    if instruction.op is Op.CALL:
        target = instruction.args[0]
        if target in function_map:
            return ins(Op.CALL, function_map[target], *instruction.args[1:])
        return instruction
    new_args: List[Any] = []
    changed = False
    for arg in instruction.args:
        if isinstance(arg, tuple) and len(arg) == 3 and arg[0] == "mem":
            mapped = object_map.get(arg[1])
            if mapped is not None:
                new_args.append(("mem", mapped, arg[2]))
                changed = True
                continue
        new_args.append(arg)
    if not changed:
        return instruction
    return Instruction(instruction.op, tuple(new_args))


def rewrite_function(
    function: Function,
    new_name: str,
    function_map: Dict[str, str],
    object_map: Dict[str, str],
) -> Function:
    body = [
        rewrite_instruction(instruction, function_map, object_map)
        for instruction in function.body
    ]
    return Function(new_name, body)


@dataclass
class CompilationUnit:
    """Everything needed to build (and rebuild) the firmware program."""

    lambdas: Dict[str, LambdaProgram] = field(default_factory=dict)
    lambda_ids: Dict[str, int] = field(default_factory=dict)
    route_ports: Dict[str, str] = field(default_factory=dict)
    #: Functions hoisted out of individual lambdas by coalescing.
    shared_functions: Dict[str, Function] = field(default_factory=dict)
    #: Pass flags toggled by the optimisation pipeline.
    merged_routes: bool = False
    if_else_tables: bool = False
    prune_parser: bool = False

    def add_lambda(
        self,
        program: LambdaProgram,
        wid: int,
        route_port: str = "p0",
    ) -> None:
        if program.name in self.lambdas:
            raise CompileError(f"duplicate lambda {program.name!r}")
        if wid in self.lambda_ids.values():
            raise CompileError(f"duplicate workload id {wid}")
        program.validate()
        self.lambdas[program.name] = program.copy()
        self.lambda_ids[program.name] = wid
        self.route_ports[program.name] = route_port

    # -- composition -------------------------------------------------------

    def headers_used(self) -> List[str]:
        used = set()
        for program in self.lambdas.values():
            used |= analyse_headers(program)
        return sorted(used)

    def build_pipeline(self):
        headers = self.headers_used() if self.prune_parser else None
        if headers is None:
            # Unpruned: parse the full canonical application chain.
            headers = ["RpcHeader", "RdmaHeader", "ServerHdr"]
        return build_dispatch_pipeline(
            self.lambda_ids,
            headers_used=headers,
            route_ports=self.route_ports,
            merged_routes=self.merged_routes,
        )

    def build_program(self) -> LambdaProgram:
        """Materialise the composed firmware program."""
        if not self.lambdas:
            raise CompileError("no lambdas to compile")
        pipeline = self.build_pipeline()
        scratch = frozenset().union(
            *(program.scratch_registers for program in self.lambdas.values())
        )
        firmware = LambdaProgram("firmware", entry=FIRMWARE_ENTRY,
                                 scratch_registers=scratch)

        # Entry: parse, then dispatch. Dispatch ends with a packet verdict.
        firmware.add_function(
            Function(
                FIRMWARE_ENTRY,
                [
                    ins(Op.CALL, "parse"),
                    ins(Op.CALL, "match_dispatch"),
                    ins(Op.TO_HOST),
                ],
            )
        )
        if self.prune_parser:
            # Optimised: one shared parser covering only used headers.
            firmware.add_function(pipeline.parser.generate_function("parse"))
        else:
            # Naive composition: each new lambda ships its own parse
            # stage (paper §5.1); "parse" simply runs them all.
            calls = []
            for lambda_name in self.lambdas:
                per_lambda = pipeline.parser.generate_function(
                    f"parse_{lambda_name}"
                )
                firmware.add_function(per_lambda)
                calls.append(ins(Op.CALL, f"parse_{lambda_name}"))
            calls.append(ins(Op.RET))
            firmware.add_function(Function("parse", calls))
        firmware.add_function(
            lower_control(
                pipeline.control,
                name="match_dispatch",
                use_if_else_tables=self.if_else_tables,
            )
        )

        for shared_name, shared in self.shared_functions.items():
            firmware.add_function(Function(shared_name, list(shared.body)))

        for lambda_name, program in self.lambdas.items():
            function_map = {
                inner: qualify(lambda_name, inner)
                for inner in program.functions
                if inner != program.entry
            }
            object_map = {
                inner: qualify(lambda_name, inner) for inner in program.objects
            }
            for inner_name, function in program.functions.items():
                public = (
                    lambda_name
                    if inner_name == program.entry
                    else function_map[inner_name]
                )
                firmware.add_function(
                    rewrite_function(function, public, function_map, object_map)
                )
            for obj in program.objects.values():
                namespaced = obj.__class__(
                    qualify(lambda_name, obj.name),
                    obj.size_bytes,
                    obj.access,
                    obj.hot,
                    obj.region,
                )
                firmware.add_object(namespaced)

        firmware.validate()
        return firmware

    def copy(self) -> "CompilationUnit":
        clone = CompilationUnit(
            lambdas={name: program.copy() for name, program in self.lambdas.items()},
            lambda_ids=dict(self.lambda_ids),
            route_ports=dict(self.route_ports),
            shared_functions={
                name: Function(name, list(function.body))
                for name, function in self.shared_functions.items()
            },
            merged_routes=self.merged_routes,
            if_else_tables=self.if_else_tables,
            prune_parser=self.prune_parser,
        )
        return clone
