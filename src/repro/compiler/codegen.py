"""Firmware generation: resource checks and the optimisation report.

The final artifact, :class:`Firmware`, is what gets "flashed" onto the
simulated SmartNIC: the composed program, its instruction-store
footprint, and the per-region data layout. :class:`OptimizationReport`
records the instruction count after every pass — the exact series shown
in the paper's Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..isa import INSTRUCTION_BYTES, LambdaProgram, Region
from ..isa.verify import (
    MAX_INSTRUCTIONS_PER_CORE,
    VerifierReport,
    VerifyOptions,
    verify_program,
)
from .passes import EXTENDED_PASSES
from .unit import CompilationUnit, CompileError

#: Netronome Agilio CX on-board RAM from the paper's testbed (§6.1.2);
#: the 16 K per-core instruction-store limit lives with the verifier
#: (:data:`repro.isa.verify.MAX_INSTRUCTIONS_PER_CORE`) and is
#: re-exported here.
NIC_MEMORY_BYTES = 2 * 1024 * 1024 * 1024

#: Fixed firmware overhead (loader tables, island config, basic NIC ops
#: kept resident — §3.1c) included in the reported binary size. Tuned so
#: the four-lambda image of Table 4 lands at ~11 MiB.
FIRMWARE_BASE_BYTES = int(10.85 * 1024 * 1024)


@dataclass
class StageCount:
    """Instruction count after one optimisation stage."""

    stage: str
    instructions: int

    def reduction_from(self, baseline: int) -> float:
        """Percent reduction relative to ``baseline`` (positive = smaller)."""
        if baseline == 0:
            return 0.0
        return 100.0 * (baseline - self.instructions) / baseline


@dataclass
class OptimizationReport:
    """Figure-9 series: unoptimised count plus per-pass counts."""

    stages: List[StageCount] = field(default_factory=list)

    @property
    def baseline(self) -> int:
        return self.stages[0].instructions if self.stages else 0

    @property
    def final(self) -> int:
        return self.stages[-1].instructions if self.stages else 0

    @property
    def total_reduction_percent(self) -> float:
        if not self.stages:
            return 0.0
        return self.stages[-1].reduction_from(self.baseline)

    def rows(self) -> List[Tuple[str, int, float]]:
        """(stage, instructions, cumulative % reduction) per stage."""
        return [
            (stage.stage, stage.instructions, stage.reduction_from(self.baseline))
            for stage in self.stages
        ]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{stage.stage}={stage.instructions}" for stage in self.stages
        )
        return f"<OptimizationReport {parts}>"


@dataclass
class Firmware:
    """A compiled, loadable SmartNIC image."""

    program: LambdaProgram
    lambda_ids: Dict[str, int]
    report: OptimizationReport
    #: Data bytes placed per memory region.
    region_layout: Dict[Region, int] = field(default_factory=dict)
    #: Static-verification result for the composed program (always
    #: error-free when compilation succeeded in strict mode).
    verifier_report: Optional[VerifierReport] = None

    @property
    def instruction_count(self) -> int:
        return self.program.instruction_count

    @property
    def code_bytes(self) -> int:
        return self.instruction_count * INSTRUCTION_BYTES

    @property
    def data_bytes(self) -> int:
        return self.program.data_bytes

    @property
    def ro_data_bytes(self) -> int:
        """Read-only objects shipped inside the binary (content blobs)."""
        from ..isa import AccessMode

        return sum(
            obj.size_bytes for obj in self.program.objects.values()
            if obj.access is AccessMode.READ
        )

    @property
    def binary_size_bytes(self) -> int:
        """Size of the image shipped to the NIC (paper Table 4).

        Writable objects are allocated at load time, not shipped.
        """
        return FIRMWARE_BASE_BYTES + self.code_bytes + self.ro_data_bytes

    @property
    def nic_memory_bytes(self) -> int:
        """NIC memory consumed once loaded (binary + writable data)."""
        return self.binary_size_bytes + (self.data_bytes - self.ro_data_bytes)

    def wid_for(self, lambda_name: str) -> int:
        try:
            return self.lambda_ids[lambda_name]
        except KeyError:
            raise KeyError(f"firmware has no lambda {lambda_name!r}") from None


def check_resources(program: LambdaProgram,
                    strict: bool = True) -> VerifierReport:
    """Statically verify the firmware and enforce the NIC's hard limits.

    Runs the full :mod:`repro.isa.verify` pipeline — instruction store,
    memory bounds/isolation, uninitialized reads, loop bounds, WCET —
    and returns the report. With ``strict`` (the default), any
    error-grade finding aborts compilation: firmware that would fault
    or run unbounded on the NIC is never flashed.
    """
    report = verify_program(program, VerifyOptions())
    if program.data_bytes + FIRMWARE_BASE_BYTES > NIC_MEMORY_BYTES:
        raise CompileError(
            f"firmware data ({program.data_bytes} B) exceeds NIC memory"
        )
    if strict and not report.ok:
        first = report.errors[0]
        raise CompileError(
            f"firmware failed verification with {len(report.errors)} "
            f"error(s); first: {first}"
        )
    return report


def region_layout(program: LambdaProgram) -> Dict[Region, int]:
    layout: Dict[Region, int] = {}
    for obj in program.objects.values():
        layout[obj.region] = layout.get(obj.region, 0) + obj.size_bytes
    return layout


def compile_unit(
    unit: CompilationUnit,
    passes: Optional[Sequence[Tuple[str, Callable]]] = None,
    optimize: bool = True,
) -> Firmware:
    """Run the optimisation pipeline and emit firmware.

    With ``optimize=False`` (or ``passes=[]``) the naive composition is
    emitted — the "Unoptimized" bar of Figure 9.
    """
    working = unit.copy()
    report = OptimizationReport()
    report.stages.append(
        StageCount("Unoptimized", working.build_program().instruction_count)
    )
    if optimize:
        for stage_name, pass_fn in (passes if passes is not None else EXTENDED_PASSES):
            working = pass_fn(working)
            report.stages.append(
                StageCount(stage_name, working.build_program().instruction_count)
            )
    program = working.build_program()
    verifier_report = check_resources(program)
    return Firmware(
        program=program,
        lambda_ids=dict(working.lambda_ids),
        report=report,
        region_layout=region_layout(program),
        verifier_report=verifier_report,
    )
