"""The Match+Lambda compiler: composition, optimisation passes, codegen."""

from .codegen import (
    FIRMWARE_BASE_BYTES,
    Firmware,
    MAX_INSTRUCTIONS_PER_CORE,
    NIC_MEMORY_BYTES,
    OptimizationReport,
    StageCount,
    check_resources,
    compile_unit,
    region_layout,
)
from .passes import (
    CTM_MAX_BYTES,
    IMEM_MAX_BYTES,
    LOCAL_MAX_BYTES,
    STANDARD_PASSES,
    dead_code_elimination,
    lambda_coalescing,
    match_reduction,
    memory_stratification,
)
from .unit import (
    CompilationUnit,
    CompileError,
    FIRMWARE_ENTRY,
    qualify,
    rewrite_function,
    rewrite_instruction,
)

__all__ = [
    "CTM_MAX_BYTES",
    "CompilationUnit",
    "CompileError",
    "FIRMWARE_BASE_BYTES",
    "FIRMWARE_ENTRY",
    "Firmware",
    "IMEM_MAX_BYTES",
    "LOCAL_MAX_BYTES",
    "MAX_INSTRUCTIONS_PER_CORE",
    "NIC_MEMORY_BYTES",
    "OptimizationReport",
    "STANDARD_PASSES",
    "StageCount",
    "check_resources",
    "compile_unit",
    "dead_code_elimination",
    "lambda_coalescing",
    "match_reduction",
    "memory_stratification",
    "qualify",
    "region_layout",
    "rewrite_function",
    "rewrite_instruction",
]
