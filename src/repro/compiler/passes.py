"""Optimisation passes of the workload manager (paper §5.1, Figure 9).

Passes operate on a :class:`~repro.compiler.unit.CompilationUnit` and
are applied in the paper's order:

1. **Lambda coalescing** — duplicate logic across lambdas (identical
   helper-function bodies) is hoisted into a shared library, with call
   sites rewritten. Includes dead-code elimination and code motion as
   enabling analyses.
2. **Match reduction** — per-lambda route tables are merged into one
   parameterised table, tables are converted to if-else sequences, and
   the parser is pruned to the headers lambdas actually use.
3. **Memory stratification** — objects are placed into LOCAL/CTM/IMEM/
   EMEM by size and access pattern, and flat-memory ``resolve``+access
   pairs collapse to direct accesses for close memories.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from ..isa import Function, LambdaProgram, Op, Region
from ..isa.analysis import (
    duplicate_functions,
    memory_access_profile,
    reachable_functions,
    unreachable_code,
)
from ..isa.instructions import REGION_CAPACITY_BYTES, Instruction, ins
from .unit import CompilationUnit

#: Placement thresholds (bytes). Derived from the Netronome memory
#: hierarchy: small/hot state belongs in core-local memory, per-request
#: working sets in the island's CTM, multi-packet payloads in IMEM, and
#: anything bigger (or cold) in EMEM — matching the paper's examples
#: (web results -> CTM, image buffers -> IMEM).
LOCAL_MAX_BYTES = 2048
CTM_MAX_BYTES = 128 * 1024
IMEM_MAX_BYTES = 4 * 1024 * 1024


def dead_code_elimination(unit: CompilationUnit) -> CompilationUnit:
    """Remove unreachable functions/instructions and unused objects."""
    for program in unit.lambdas.values():
        reachable = reachable_functions(program)
        for name in list(program.functions):
            if name not in reachable:
                del program.functions[name]
        for function in program.functions.values():
            dead = set(unreachable_code(function))
            if dead:
                function.body[:] = [
                    instruction
                    for index, instruction in enumerate(function.body)
                    if index not in dead
                ]
        profile = memory_access_profile(program)
        for name in list(program.objects):
            if profile[name].total == 0:
                del program.objects[name]
    return unit


def lambda_coalescing(unit: CompilationUnit) -> CompilationUnit:
    """Hoist identical helper functions into a shared library.

    Runs dead-code elimination first (the paper folds DCE and code
    motion into this step). Only helpers that match *exactly* after
    label normalisation are merged — entry functions never are.
    """
    dead_code_elimination(unit)
    programs = list(unit.lambdas.values())
    groups = duplicate_functions(programs)
    counter = itertools.count(1)
    for signature, locations in sorted(
        groups.items(), key=lambda item: sorted(item[1])
    ):
        shared_name = f"lib.shared{next(counter)}"
        program_name, function_name = sorted(locations)[0]
        template = unit.lambdas[program_name].functions[function_name]
        unit.shared_functions[shared_name] = Function(
            shared_name, list(template.body)
        )
        for program_name, function_name in locations:
            program = unit.lambdas[program_name]
            del program.functions[function_name]
            for function in program.functions.values():
                function.body[:] = [
                    ins(Op.CALL, shared_name)
                    if (instruction.op is Op.CALL
                        and instruction.args[0] == function_name)
                    else instruction
                    for instruction in function.body
                ]
    return unit


def match_reduction(unit: CompilationUnit) -> CompilationUnit:
    """Merge route tables, lower tables to if-else, prune the parser."""
    unit.merged_routes = True
    unit.if_else_tables = True
    unit.prune_parser = True
    return unit


def memory_stratification(
    unit: CompilationUnit,
    local_budget: int = REGION_CAPACITY_BYTES[Region.LOCAL],
    ctm_budget: int = REGION_CAPACITY_BYTES[Region.CTM],
) -> CompilationUnit:
    """Place objects into concrete memories and fold flat accesses.

    Placement policy (most- to least-preferred):

    * hot or loop-accessed objects up to ``LOCAL_MAX_BYTES`` -> LOCAL,
      while the per-core budget lasts;
    * objects up to ``CTM_MAX_BYTES`` -> CTM (island memory);
    * read-mostly objects up to ``IMEM_MAX_BYTES`` -> IMEM;
    * everything else -> EMEM.

    For LOCAL and CTM placements, the ``resolve``+``load/store`` pairs
    emitted by the flat-memory front-end collapse into single direct
    accesses (``loadd``/``stored``) — the instruction-count win in
    Figure 9 — and all placements change the per-access cycle cost.
    """
    local_left = local_budget
    ctm_left = ctm_budget
    for program in unit.lambdas.values():
        profile = memory_access_profile(program)
        ordered = sorted(
            program.objects.values(),
            key=lambda obj: (
                not (obj.hot or profile[obj.name].in_loop),
                obj.size_bytes,
            ),
        )
        direct_objects = set()
        for obj in ordered:
            hotness = obj.hot or profile[obj.name].in_loop
            if hotness and obj.size_bytes <= LOCAL_MAX_BYTES and \
                    obj.size_bytes <= local_left:
                obj.region = Region.LOCAL
                local_left -= obj.size_bytes
                direct_objects.add(obj.name)
            elif obj.size_bytes <= CTM_MAX_BYTES and obj.size_bytes <= ctm_left:
                obj.region = Region.CTM
                ctm_left -= obj.size_bytes
                direct_objects.add(obj.name)
            elif obj.size_bytes <= IMEM_MAX_BYTES and \
                    profile[obj.name].writes <= profile[obj.name].reads:
                obj.region = Region.IMEM
            else:
                obj.region = Region.EMEM
        for function in program.functions.values():
            function.body[:] = _fold_direct_accesses(function.body, direct_objects)
    return unit


def _fold_direct_accesses(
    body: List[Instruction], direct_objects: set
) -> List[Instruction]:
    """Peephole: resolve+load -> loadd, resolve+store -> stored."""
    folded: List[Instruction] = []
    index = 0
    while index < len(body):
        instruction = body[index]
        nxt = body[index + 1] if index + 1 < len(body) else None
        if (
            instruction.op is Op.RESOLVE
            and nxt is not None
            and isinstance(instruction.args[1], tuple)
            and instruction.args[1][1] in direct_objects
        ):
            memref = instruction.args[1]
            if nxt.op is Op.LOAD and nxt.args[-1] == memref:
                folded.append(ins(Op.LOADD, nxt.args[0], memref))
                index += 2
                continue
            if nxt.op is Op.STORE and nxt.args[-2] == memref:
                folded.append(ins(Op.STORED, memref, nxt.args[-1]))
                index += 2
                continue
        folded.append(instruction)
        index += 1
    return folded


def constant_folding(unit: CompilationUnit) -> CompilationUnit:
    """Fold statically-known values (verifier-powered, semantics-safe).

    Uses the verifier's constant-propagation fixpoint with an all-NAC
    entry state, so every fold is valid in *any* calling context:

    * a pure ALU op whose result is a known constant becomes a ``mov``
      of that constant (cheaper, and it feeds dead-store elimination);
    * a conditional branch whose outcome is known becomes a ``jmp``
      (always taken) or disappears (never taken), after which dead-code
      elimination sweeps the unreachable arm.
    """
    from ..isa.interpreter import _BRANCH_OPS
    from ..isa.verify import NAC, constant_states

    def fold_function(function: Function) -> bool:
        consts = constant_states(function)
        new_body: List[Instruction] = []
        changed = False
        for index, instruction in enumerate(function.body):
            op = instruction.op
            state = consts.before(index)
            if state is None:  # Unreachable; DCE's job.
                new_body.append(instruction)
                continue
            if op in _FOLDABLE_ALU_OPS:
                from ..isa.verify import ConstLattice

                value = ConstLattice.evaluate(instruction, state) \
                    .get(instruction.args[0], NAC)
                if isinstance(value, int) and \
                        instruction.args[1:] != (value,):
                    new_body.append(ins(Op.MOV, instruction.args[0], value))
                    changed = True
                    continue
            elif op in _BRANCH_OPS:
                a = consts.value_before(index, instruction.args[0])
                b = consts.value_before(index, instruction.args[1])
                if a is not NAC and b is not NAC:
                    try:
                        taken = _BRANCH_OPS[op](a, b)
                    except Exception:
                        new_body.append(instruction)
                        continue
                    if taken:
                        new_body.append(ins(Op.JMP, instruction.args[2]))
                    changed = True
                    continue
            new_body.append(instruction)
        if changed:
            function.body[:] = new_body
        return changed

    for program in unit.lambdas.values():
        for function in program.functions.values():
            fold_function(function)
    for function in unit.shared_functions.values():
        fold_function(function)
    dead_code_elimination(unit)
    return unit


#: ALU ops constant folding may rewrite to ``mov`` (never mul -> keeps
#: the peephole simple: all of these already cost one cycle except MUL,
#: which folding turns into the cheaper mov).
_FOLDABLE_ALU_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
    Op.MIN, Op.MAX,
})


def dead_store_elimination(unit: CompilationUnit) -> CompilationUnit:
    """Delete register writes whose values are provably never read.

    Liveness is solved on the *composed* firmware (where every exit
    ends the machine, so nothing is live at the end) and the findings
    are mapped back into the unit's lambda and shared-function bodies.
    Only side-effect-free writes (:data:`~repro.isa.verify.PURE_DEF_OPS`)
    are deleted; removal exposes new dead stores, so the pass iterates
    to a fixpoint.
    """
    from ..isa.verify import dead_stores
    from .unit import SEP

    def locate(firmware_name: str):
        """Map a composed-function name back to the unit's Function."""
        if firmware_name in unit.shared_functions:
            return unit.shared_functions[firmware_name]
        if firmware_name in unit.lambdas:
            program = unit.lambdas[firmware_name]
            return program.functions[program.entry]
        lambda_name, _, inner = firmware_name.partition(SEP)
        program = unit.lambdas.get(lambda_name)
        if program is not None:
            return program.functions.get(inner)
        return None  # Generated parse/dispatch code; rebuilt every time.

    while True:
        firmware = unit.build_program()
        found = dead_stores(
            firmware, entry_exit_live=frozenset(), removable_only=True
        )
        removals: Dict[int, Tuple[Function, set]] = {}
        for name, index, _reg in found:
            function = locate(name)
            if function is not None:
                removals.setdefault(id(function), (function, set()))[1].add(index)
        if not removals:
            return unit
        for function, dead in removals.values():
            function.body[:] = [
                instruction
                for index, instruction in enumerate(function.body)
                if index not in dead
            ]


#: The paper's pass order, as (stage label, pass callable).
STANDARD_PASSES: List[Tuple[str, object]] = [
    ("Lambda Coalescing", lambda_coalescing),
    ("Match Reduction", match_reduction),
    ("Memory Stratification", memory_stratification),
]

#: The standard pipeline plus the verifier-powered passes. Opt-in: the
#: Figure-9 series is defined by the three standard stages, so the
#: extended stages never run unless requested.
EXTENDED_PASSES: List[Tuple[str, object]] = STANDARD_PASSES + [
    ("Constant Folding", constant_folding),
    ("Dead Store Elimination", dead_store_elimination),
]
