"""Raft RPC messages (carried as packet payloads on the simulated net)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry."""

    term: int
    command: Tuple[str, ...]  # e.g. ("SET", key, value)
    client: Optional[str] = None
    client_seq: int = 0


@dataclass
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass
class RequestVoteReply:
    term: int
    voter: str
    granted: bool


@dataclass
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: List[LogEntry] = field(default_factory=list)
    leader_commit: int = 0


@dataclass
class AppendEntriesReply:
    term: int
    follower: str
    success: bool
    #: Highest index known replicated on the follower (on success).
    match_index: int = 0


@dataclass
class ClientCommand:
    """A state-machine command submitted by a client."""

    command: Tuple[str, ...]
    client: str
    seq: int


@dataclass
class ClientReply:
    seq: int
    ok: bool
    result: Any = None
    #: Populated on redirect: who the sender believes is leader.
    leader_hint: Optional[str] = None


def payload_bytes(message: Any) -> int:
    """Approximate wire size of a message for link accounting."""
    base = 48
    if isinstance(message, AppendEntries):
        return base + 32 * len(message.entries)
    if isinstance(message, (ClientCommand, ClientReply)):
        return base + 32
    return base
