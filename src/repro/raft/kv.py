"""etcd-like replicated key-value store on top of Raft.

The paper's bare-metal backend relies on etcd to sync lambda placement
and load-balancing state with the gateway (§6.1.1); this module is that
substrate: a Raft-replicated dict supporting SET/GET/DEL/CAS, a cluster
builder, and a retrying client.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..net import HeaderStack, Packet, RpcHeader, UDPHeader
from ..net.network import Network, Node
from ..sim import Environment, RngRegistry
from .messages import ClientCommand, ClientReply, payload_bytes
from .node import RaftNode


class EtcdStore:
    """The replicated state machine: a string-keyed dict."""

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}
        self.applied_commands = 0

    def apply(self, command: Tuple[str, ...]) -> Any:
        """Apply one committed command; returns its result."""
        self.applied_commands += 1
        op = command[0]
        if op == "SET":
            _, key, value = command
            self.data[key] = value
            return "OK"
        if op == "GET":
            return self.data.get(command[1])
        if op == "DEL":
            return self.data.pop(command[1], None) is not None
        if op == "CAS":
            _, key, expected, value = command
            if self.data.get(key) == expected:
                self.data[key] = value
                return True
            return False
        raise ValueError(f"unknown command {op!r}")


class EtcdCluster:
    """An N-node Raft cluster, each node on the shared network."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        n_nodes: int = 3,
        rng: Optional[RngRegistry] = None,
        name_prefix: str = "etcd",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        rng = rng or RngRegistry(seed=0)
        self.env = env
        self.names = [f"{name_prefix}{index}" for index in range(1, n_nodes + 1)]
        self.stores: Dict[str, EtcdStore] = {}
        self.nodes: Dict[str, RaftNode] = {}
        for name in self.names:
            store = EtcdStore()
            net_node = network.add_node(name)
            raft = RaftNode(
                env, net_node, peers=list(self.names),
                apply_fn=store.apply, rng=rng.stream(f"raft:{name}"),
            )
            self.stores[name] = store
            self.nodes[name] = raft

    def leader(self) -> Optional[RaftNode]:
        leaders = [node for node in self.nodes.values() if node.is_leader]
        return leaders[0] if leaders else None

    def wait_for_leader(self, check_interval: float = 0.05):
        """Process: wait until some node is leader; returns it."""
        def waiter():
            while self.leader() is None:
                yield self.env.timeout(check_interval)
            return self.leader()

        return self.env.process(waiter())

    def crash(self, name: str) -> None:
        self.nodes[name].crash()

    def recover(self, name: str) -> None:
        self.nodes[name].recover()


class EtcdClient:
    """A cluster client with leader discovery and retries."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        cluster_names: List[str],
        timeout: float = 0.5,
        max_attempts: int = 12,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.cluster_names = list(cluster_names)
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._seq = itertools.count(1)
        self._waiting: Dict[int, Any] = {}
        self._leader_guess: Optional[str] = None
        node.attach(self._receive)

    def _receive(self, packet: Packet) -> None:
        message = packet.payload
        if isinstance(message, ClientReply):
            waiter = self._waiting.pop(message.seq, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(message)

    def execute(self, command: Tuple[str, ...]):
        """Process: run a command through the cluster; returns result."""
        return self.env.process(self._execute(command))

    def _execute(self, command: Tuple[str, ...]):
        seq = next(self._seq)
        targets = itertools.cycle(self.cluster_names)
        for attempt in range(self.max_attempts):
            target = self._leader_guess or next(targets)
            message = ClientCommand(command=tuple(command), client=self.name,
                                    seq=seq)
            waiter = self.env.event()
            self._waiting[seq] = waiter
            self.node.send(Packet(
                src=self.name, dst=target,
                headers=HeaderStack([UDPHeader(), RpcHeader(method="ClientCommand")]),
                payload=message,
                payload_bytes=payload_bytes(message),
            ))
            outcome = yield self.env.any_of(
                [waiter, self.env.timeout(self.timeout, value=None)]
            )
            reply = waiter.value if waiter in outcome else None
            self._waiting.pop(seq, None)
            if reply is None:
                self._leader_guess = None  # Timed out; try someone else.
                continue
            if reply.ok:
                return reply.result
            self._leader_guess = reply.leader_hint  # Redirected.
            yield self.env.timeout(0.02)
        raise TimeoutError(f"etcd command {command!r} failed after retries")

    # -- convenience wrappers (all return processes) -----------------------

    def set(self, key: str, value: Any):
        return self.execute(("SET", key, value))

    def get(self, key: str):
        return self.execute(("GET", key))

    def delete(self, key: str):
        return self.execute(("DEL", key))

    def cas(self, key: str, expected: Any, value: Any):
        return self.execute(("CAS", key, expected, value))
