"""The replicated log (1-indexed, as in the Raft paper)."""

from __future__ import annotations

from typing import List, Optional

from .messages import LogEntry


class RaftLog:
    """An in-memory Raft log with the usual index/term helpers."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def entry(self, index: int) -> LogEntry:
        """1-indexed access."""
        if index < 1 or index > len(self._entries):
            raise IndexError(f"log has no entry {index}")
        return self._entries[index - 1]

    def term_at(self, index: int) -> int:
        """Term of entry ``index``; index 0 has term 0."""
        if index == 0:
            return 0
        return self.entry(index).term

    def append(self, entry: LogEntry) -> int:
        """Append and return the new entry's index."""
        self._entries.append(entry)
        return len(self._entries)

    def entries_from(self, index: int) -> List[LogEntry]:
        """Entries at ``index`` and beyond (1-indexed)."""
        return list(self._entries[max(0, index - 1):])

    def truncate_from(self, index: int) -> None:
        """Delete entry ``index`` and everything after it."""
        self._entries = self._entries[:max(0, index - 1)]

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """Raft's AppendEntries consistency check."""
        if prev_index == 0:
            return True
        if prev_index > self.last_index:
            return False
        return self.term_at(prev_index) == prev_term

    def is_up_to_date(self, last_index: int, last_term: int) -> bool:
        """Election restriction: is (last_index, last_term) >= ours?"""
        if last_term != self.last_term:
            return last_term > self.last_term
        return last_index >= self.last_index

    def all_entries(self) -> List[LogEntry]:
        return list(self._entries)
