"""Raft consensus and the etcd-like replicated KV store."""

from .kv import EtcdClient, EtcdCluster, EtcdStore
from .log import RaftLog
from .messages import (
    AppendEntries,
    AppendEntriesReply,
    ClientCommand,
    ClientReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from .node import CANDIDATE, FOLLOWER, LEADER, RaftNode

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "CANDIDATE",
    "ClientCommand",
    "ClientReply",
    "EtcdClient",
    "EtcdCluster",
    "EtcdStore",
    "FOLLOWER",
    "LEADER",
    "LogEntry",
    "RaftLog",
    "RaftNode",
    "RequestVote",
    "RequestVoteReply",
]
