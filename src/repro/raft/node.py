"""A Raft consensus node running over the simulated network.

Implements leader election, log replication, and commitment from the
Raft paper (Ongaro & Ousterhout 2014), which is the protocol behind the
etcd store the paper's bare-metal backend syncs state through (§6.1.1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net import HeaderStack, Packet, RpcHeader, UDPHeader
from ..net.network import Node
from ..sim import Environment
from .log import RaftLog
from .messages import (
    AppendEntries,
    AppendEntriesReply,
    ClientCommand,
    ClientReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
    payload_bytes,
)

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Timer granularity: how often a node checks its election deadline.
TICK_SECONDS = 0.010


class RaftNode:
    """One member of a Raft cluster."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        peers: List[str],
        apply_fn: Callable[[Tuple[str, ...]], Any],
        rng,
        election_timeout_min: float = 0.150,
        election_timeout_max: float = 0.300,
        heartbeat_interval: float = 0.050,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.peers = [peer for peer in peers if peer != self.name]
        self.apply_fn = apply_fn
        self.rng = rng
        self.election_timeout_min = election_timeout_min
        self.election_timeout_max = election_timeout_max
        self.heartbeat_interval = heartbeat_interval

        # Persistent state.
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()

        # Volatile state.
        self.state = FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[str] = None
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._votes: set = set()
        self._alive = True
        self._election_deadline = 0.0
        #: Waiting client replies: log index -> (client, seq).
        self._client_waiting: Dict[int, Tuple[str, int]] = {}
        #: Applied results kept for duplicate suppression: (client, seq).
        self._applied_seqs: Dict[Tuple[str, int], Any] = {}

        node.attach(self._receive)
        self._reset_election_deadline()
        env.process(self._ticker())

    # -- lifecycle / failure injection -------------------------------------

    @property
    def is_leader(self) -> bool:
        return self._alive and self.state == LEADER

    @property
    def alive(self) -> bool:
        return self._alive

    def crash(self) -> None:
        """Stop participating (messages are ignored)."""
        self._alive = False
        self.state = FOLLOWER

    def recover(self) -> None:
        """Rejoin the cluster as a follower (log and term persist)."""
        self._alive = True
        self.state = FOLLOWER
        self._reset_election_deadline()

    # -- timers --------------------------------------------------------------

    def _reset_election_deadline(self) -> None:
        timeout = self.rng.uniform(
            self.election_timeout_min, self.election_timeout_max
        )
        self._election_deadline = self.env.now + timeout

    def _ticker(self):
        while True:
            yield self.env.timeout(TICK_SECONDS)
            if not self._alive:
                continue
            if self.state == LEADER:
                self._broadcast_append_entries()
            elif self.env.now >= self._election_deadline:
                self._start_election()

    # -- messaging -------------------------------------------------------------

    def _send(self, dst: str, message: Any) -> None:
        packet = Packet(
            src=self.name,
            dst=dst,
            headers=HeaderStack([
                UDPHeader(), RpcHeader(method=type(message).__name__),
            ]),
            payload=message,
            payload_bytes=payload_bytes(message),
        )
        self.node.send(packet)

    def _receive(self, packet: Packet) -> None:
        if not self._alive:
            return
        message = packet.payload
        if isinstance(message, RequestVote):
            self._on_request_vote(message)
        elif isinstance(message, RequestVoteReply):
            self._on_request_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._on_append_entries(message)
        elif isinstance(message, AppendEntriesReply):
            self._on_append_entries_reply(message)
        elif isinstance(message, ClientCommand):
            self._on_client_command(packet.src, message)

    def _step_down(self, term: int) -> None:
        self.current_term = term
        self.state = FOLLOWER
        self.voted_for = None
        self._votes.clear()
        self._reset_election_deadline()

    # -- elections ----------------------------------------------------------------

    def _start_election(self) -> None:
        self.state = CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self._reset_election_deadline()
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "raft.election", "raft", node=self.name,
                tags={"term": self.current_term},
            )
        message = RequestVote(
            term=self.current_term,
            candidate=self.name,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self.peers:
            self._send(peer, message)
        self._maybe_win()

    def _on_request_vote(self, message: RequestVote) -> None:
        if message.term > self.current_term:
            self._step_down(message.term)
        granted = False
        if message.term == self.current_term and \
                self.voted_for in (None, message.candidate) and \
                self.log.is_up_to_date(message.last_log_index,
                                       message.last_log_term):
            granted = True
            self.voted_for = message.candidate
            self._reset_election_deadline()
        self._send(
            message.candidate,
            RequestVoteReply(term=self.current_term, voter=self.name,
                             granted=granted),
        )

    def _on_request_vote_reply(self, message: RequestVoteReply) -> None:
        if message.term > self.current_term:
            self._step_down(message.term)
            return
        if self.state != CANDIDATE or message.term != self.current_term:
            return
        if message.granted:
            self._votes.add(message.voter)
            self._maybe_win()

    def _maybe_win(self) -> None:
        majority = (len(self.peers) + 1) // 2 + 1
        if self.state == CANDIDATE and len(self._votes) >= majority:
            self.state = LEADER
            self.leader_hint = self.name
            if self.env.tracer is not None:
                self.env.tracer.instant(
                    "raft.leader_elected", "raft", node=self.name,
                    tags={"term": self.current_term},
                )
            for peer in self.peers:
                self.next_index[peer] = self.log.last_index + 1
                self.match_index[peer] = 0
            self._broadcast_append_entries()

    # -- replication -----------------------------------------------------------------

    def _broadcast_append_entries(self) -> None:
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: str) -> None:
        next_index = self.next_index.get(peer, self.log.last_index + 1)
        prev_index = next_index - 1
        message = AppendEntries(
            term=self.current_term,
            leader=self.name,
            prev_log_index=prev_index,
            prev_log_term=self.log.term_at(prev_index),
            entries=self.log.entries_from(next_index),
            leader_commit=self.commit_index,
        )
        self._send(peer, message)

    def _on_append_entries(self, message: AppendEntries) -> None:
        if message.term > self.current_term:
            self._step_down(message.term)
        if message.term < self.current_term:
            self._send(
                message.leader,
                AppendEntriesReply(term=self.current_term,
                                   follower=self.name, success=False),
            )
            return
        # Valid leader for this term.
        self.state = FOLLOWER
        self.leader_hint = message.leader
        self._reset_election_deadline()

        if not self.log.matches(message.prev_log_index, message.prev_log_term):
            self._send(
                message.leader,
                AppendEntriesReply(term=self.current_term,
                                   follower=self.name, success=False),
            )
            return

        # Append new entries, truncating conflicts.
        index = message.prev_log_index
        for entry in message.entries:
            index += 1
            if index <= self.log.last_index:
                if self.log.term_at(index) != entry.term:
                    self.log.truncate_from(index)
                    self.log.append(entry)
            else:
                self.log.append(entry)

        if message.leader_commit > self.commit_index:
            self.commit_index = min(message.leader_commit, self.log.last_index)
            self._apply_committed()

        self._send(
            message.leader,
            AppendEntriesReply(term=self.current_term, follower=self.name,
                               success=True, match_index=index),
        )

    def _on_append_entries_reply(self, message: AppendEntriesReply) -> None:
        if message.term > self.current_term:
            self._step_down(message.term)
            return
        if self.state != LEADER or message.term != self.current_term:
            return
        peer = message.follower
        if message.success:
            self.match_index[peer] = max(
                self.match_index.get(peer, 0), message.match_index
            )
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit_index()
        else:
            self.next_index[peer] = max(1, self.next_index.get(peer, 1) - 1)
            self._send_append_entries(peer)

    def _advance_commit_index(self) -> None:
        for index in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(index) != self.current_term:
                continue  # §5.4.2: only commit current-term entries by counting.
            replicated = 1 + sum(
                1 for peer in self.peers if self.match_index.get(peer, 0) >= index
            )
            majority = (len(self.peers) + 1) // 2 + 1
            if replicated >= majority:
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry(self.last_applied)
            result = self.apply_fn(entry.command)
            if entry.client is not None:
                self._applied_seqs[(entry.client, entry.client_seq)] = result
                waiting = self._client_waiting.pop(self.last_applied, None)
                if waiting is not None and self.state == LEADER:
                    client, seq = waiting
                    self._send(client, ClientReply(seq=seq, ok=True,
                                                   result=result))

    # -- client interface -----------------------------------------------------------

    def _on_client_command(self, client: str, message: ClientCommand) -> None:
        if self.state != LEADER:
            self._send(client, ClientReply(
                seq=message.seq, ok=False, leader_hint=self.leader_hint,
            ))
            return
        done = self._applied_seqs.get((message.client, message.seq))
        if done is not None:
            # Duplicate (client retried after a lost reply): do not
            # re-apply, just re-answer.
            self._send(client, ClientReply(seq=message.seq, ok=True, result=done))
            return
        index = self.log.append(LogEntry(
            term=self.current_term,
            command=tuple(message.command),
            client=message.client,
            client_seq=message.seq,
        ))
        self._client_waiting[index] = (client, message.seq)
        self._broadcast_append_entries()
