"""Network substrate: packets, headers, links, switch, topology."""

from .headers import (
    EthernetHeader,
    Header,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    RdmaHeader,
    RpcHeader,
    STANDARD_HEADERS,
    ServerHdr,
    TCPHeader,
    UDPHeader,
    header_class,
)
from .link import Link, LinkStats
from .network import Network, Node, TEN_GBPS
from .packet import DEADLINE_META, Packet, reset_packet_ids
from .switch import Switch
from .trace import PacketTracer, TraceRecord

__all__ = [
    "DEADLINE_META",
    "EthernetHeader",
    "Header",
    "HeaderStack",
    "IPv4Header",
    "LambdaHeader",
    "Link",
    "LinkStats",
    "Network",
    "Node",
    "Packet",
    "PacketTracer",
    "RdmaHeader",
    "RpcHeader",
    "STANDARD_HEADERS",
    "ServerHdr",
    "Switch",
    "TCPHeader",
    "TEN_GBPS",
    "TraceRecord",
    "UDPHeader",
    "header_class",
    "reset_packet_ids",
]
