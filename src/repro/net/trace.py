"""Packet tracing: a tcpdump for the simulated network.

Attach a :class:`PacketTracer` to network nodes to record traffic with
timestamps, then filter/summarise it — invaluable when debugging
multi-hop flows (gateway -> NIC -> memcached -> NIC -> gateway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim import Environment
from .network import Network, Node
from .packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet observation."""

    at: float
    node: str
    direction: str  # "rx" | "tx"
    src: str
    dst: str
    size_bytes: int
    headers: str
    wid: Optional[int] = None
    request_id: Optional[int] = None

    def format(self) -> str:
        lam = f" wid={self.wid} req={self.request_id}" \
            if self.wid is not None else ""
        return (f"{self.at * 1e6:12.2f}us {self.node:>12s} {self.direction} "
                f"{self.src}->{self.dst} {self.size_bytes:5d}B "
                f"[{self.headers}]{lam}")


class PacketTracer:
    """Captures rx/tx packets on instrumented nodes."""

    def __init__(self, env: Environment, max_records: int = 100_000) -> None:
        self.env = env
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    def attach_to(self, node: Node) -> None:
        """Instrument one node's rx handler and tx path."""
        inner_handler = node.handler

        def traced_rx(packet: Packet) -> None:
            self._record(node.name, "rx", packet)
            if inner_handler is not None:
                inner_handler(packet)

        node.handler = traced_rx
        inner_send = node.send

        def traced_tx(packet: Packet) -> None:
            self._record(node.name, "tx", packet)
            inner_send(packet)

        node.send = traced_tx  # type: ignore[method-assign]

    def attach_to_network(self, network: Network) -> None:
        """Instrument every node currently in the network."""
        for name in network.nodes:
            self.attach_to(network.node(name))

    def _record(self, node: str, direction: str, packet: Packet) -> None:
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        lam = packet.headers.get("LambdaHeader")
        self.records.append(TraceRecord(
            at=self.env.now,
            node=node,
            direction=direction,
            src=packet.src,
            dst=packet.dst,
            size_bytes=packet.size_bytes,
            headers="/".join(header.name.replace("Header", "")
                             for header in packet.headers),
            wid=lam.wid if lam else None,
            request_id=lam.request_id if lam else None,
        ))

    # -- queries --------------------------------------------------------------

    def filter(self, node: Optional[str] = None,
               direction: Optional[str] = None,
               request_id: Optional[int] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> List[TraceRecord]:
        """Records matching all given criteria, in time order."""
        out = []
        for record in self.records:
            if node is not None and record.node != node:
                continue
            if direction is not None and record.direction != direction:
                continue
            if request_id is not None and record.request_id != request_id:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def flow(self, request_id: int) -> List[TraceRecord]:
        """The full multi-hop journey of one request id."""
        return self.filter(request_id=request_id)

    def summary(self) -> Dict[str, int]:
        """Packet counts per (node, direction)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = f"{record.node}:{record.direction}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def format(self, records: Optional[List[TraceRecord]] = None) -> str:
        return "\n".join(record.format()
                         for record in (records if records is not None
                                        else self.records))
