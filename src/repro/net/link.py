"""Point-to-point links with bandwidth, propagation delay, and loss.

A :class:`Link` joins two endpoints. Each direction has its own transmit
queue and serializer process, so the link models both serialization
delay (``size_bits / bandwidth``) and propagation delay, plus optional
random drop for failure-injection tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..obs import Tracer
from ..sim import Environment, Store
from .packet import Packet


class LinkStats:
    """Per-direction counters."""

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.packets_dropped_down = 0

    def __repr__(self) -> str:
        return (
            f"<LinkStats sent={self.packets_sent} bytes={self.bytes_sent} "
            f"dropped={self.packets_dropped} "
            f"dropped_down={self.packets_dropped_down}>"
        )


class _Direction:
    """One direction of a full-duplex link."""

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        propagation_delay: float,
        deliver: Callable[[Packet], None],
        drop_probability: float,
        rng,
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.deliver = deliver
        self.drop_probability = drop_probability
        self.rng = rng
        self.up = True
        self.queue: Store = Store(env)
        self.stats = LinkStats()
        #: Enqueue timestamps for traced packets only, so the hop span
        #: covers queueing + serialization + propagation.
        self._enqueue_ts = {}
        env.process(self._serializer())

    def note_enqueue(self, packet: Packet) -> None:
        """Remember when a traced packet entered the transmit queue."""
        if self.env.tracer is not None and Tracer.context(packet)[0]:
            self._enqueue_ts[id(packet)] = self.env.now

    def _trace_hop(self, packet: Packet, enqueued_at,
                   dropped: Optional[str] = None) -> None:
        tracer = self.env.tracer
        if tracer is None or enqueued_at is None:
            return
        trace_id, parent = Tracer.context(packet)
        if not trace_id:
            return
        tags = {"bytes": packet.size_bytes}
        if dropped is not None:
            tags["dropped"] = dropped
        tracer.end(tracer.begin(
            "net.link", "net", trace_id=trace_id, parent=parent,
            node=self.name, start=enqueued_at, tags=tags,
        ))

    def _serializer(self):
        while True:
            packet = yield self.queue.get()
            enqueued_at = (self._enqueue_ts.pop(id(packet), None)
                           if self._enqueue_ts else None)
            if not self.up:
                self.stats.packets_dropped += 1
                self.stats.packets_dropped_down += 1
                self._trace_hop(packet, enqueued_at, dropped="link_down")
                continue
            if self.drop_probability > 0 and self.rng is not None:
                if self.rng.random() < self.drop_probability:
                    self.stats.packets_dropped += 1
                    self._trace_hop(packet, enqueued_at, dropped="loss")
                    continue
            yield self.env.timeout(packet.size_bits / self.bandwidth_bps)
            self.stats.packets_sent += 1
            self.stats.bytes_sent += packet.size_bytes
            # Propagation happens "in flight": schedule delivery without
            # blocking the serializer for the next packet.
            self.env.process(self._propagate(packet, enqueued_at))

    def _propagate(self, packet: Packet, enqueued_at=None):
        yield self.env.timeout(self.propagation_delay)
        packet.stamp(self.name, self.env.now)
        self._trace_hop(packet, enqueued_at)
        self.deliver(packet)


class Link:
    """A full-duplex link between endpoints ``a`` and ``b``.

    ``deliver_a`` / ``deliver_b`` are callables invoked when a packet
    arrives at the respective endpoint.
    """

    def __init__(
        self,
        env: Environment,
        a: str,
        b: str,
        bandwidth_bps: float = 10e9,
        propagation_delay: float = 500e-9,
        drop_probability: float = 0.0,
        rng=None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if drop_probability > 0 and rng is None:
            raise ValueError("a drop probability requires an rng")
        self.env = env
        self.a = a
        self.b = b
        self._deliver_a: Optional[Callable[[Packet], None]] = None
        self._deliver_b: Optional[Callable[[Packet], None]] = None
        self._ab = _Direction(
            env, f"{a}->{b}", bandwidth_bps, propagation_delay,
            self._to_b, drop_probability, rng,
        )
        self._ba = _Direction(
            env, f"{b}->{a}", bandwidth_bps, propagation_delay,
            self._to_a, drop_probability, rng,
        )

    @property
    def up(self) -> bool:
        """True when both directions carry traffic."""
        return self._ab.up and self._ba.up

    def set_state(self, up: bool) -> None:
        """Bring the whole link up or down (both directions).

        While down, queued and newly enqueued packets are dropped the
        instant the serializer reaches them; no traffic crosses in
        either direction until the link is brought back up.
        """
        self._ab.up = up
        self._ba.up = up

    def attach(self, endpoint: str, deliver: Callable[[Packet], None]) -> None:
        """Register the receive callback for one endpoint."""
        if endpoint == self.a:
            self._deliver_a = deliver
        elif endpoint == self.b:
            self._deliver_b = deliver
        else:
            raise ValueError(f"{endpoint!r} is not an endpoint of this link")

    def send(self, from_endpoint: str, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission from ``from_endpoint``."""
        if from_endpoint == self.a:
            self._ab.note_enqueue(packet)
            self._ab.queue.put(packet)
        elif from_endpoint == self.b:
            self._ba.note_enqueue(packet)
            self._ba.queue.put(packet)
        else:
            raise ValueError(f"{from_endpoint!r} is not an endpoint of this link")

    def stats(self, from_endpoint: str) -> LinkStats:
        """Transmit-direction counters for ``from_endpoint``."""
        if from_endpoint == self.a:
            return self._ab.stats
        if from_endpoint == self.b:
            return self._ba.stats
        raise ValueError(f"{from_endpoint!r} is not an endpoint of this link")

    def _to_a(self, packet: Packet) -> None:
        if self._deliver_a is None:
            raise RuntimeError(f"no receiver attached at {self.a!r}")
        self._deliver_a(packet)

    def _to_b(self, packet: Packet) -> None:
        if self._deliver_b is None:
            raise RuntimeError(f"no receiver attached at {self.b!r}")
        self._deliver_b(packet)
