"""Packets: the unit of transfer on links and through switches."""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from .headers import HeaderStack

#: ``Packet.meta`` key carrying a request's absolute sim-time deadline.
#: Defined here (the lowest layer every hop already imports) so the
#: NIC/host dequeue checks need no dependency on the serverless
#: package; ``repro.serverless.overload`` re-exports it.
DEADLINE_META = "deadline"

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart packet-id assignment at 1.

    Packet ids were drawn from one process-global counter, which made
    them depend on how many simulations had already run in the process
    — harmless while ids stayed debug-only, but a shard-isolation
    hazard: the same shard would number its packets differently inline
    vs in a fresh pool worker. :class:`~repro.net.link.Network` calls
    this on construction, so every testbed numbers its packets from 1
    regardless of process history. (Sim runs are synchronous within a
    thread, so sequentially used networks never interleave draws.)
    """
    global _packet_ids
    _packet_ids = itertools.count(1)


class Packet:
    """A simulated network packet.

    ``payload`` is an arbitrary Python object (bytes for realism, or a
    structured value); ``payload_bytes`` is its on-wire size and is what
    serialization delay is computed from. ``trace`` accumulates
    (location, time) pairs for latency accounting in tests.
    """

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "headers",
        "payload",
        "payload_bytes",
        "meta",
        "trace",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        headers: Optional[HeaderStack] = None,
        payload: Any = None,
        payload_bytes: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.headers = headers if headers is not None else HeaderStack()
        self.payload = payload
        self.payload_bytes = int(payload_bytes)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.trace: List[Tuple[str, float]] = []

    @property
    def size_bytes(self) -> int:
        """Total on-wire size: headers plus payload."""
        return self.headers.size_bytes + self.payload_bytes

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def stamp(self, location: str, now: float) -> None:
        """Record that the packet was at ``location`` at time ``now``."""
        self.trace.append((location, now))

    def copy(self) -> "Packet":
        """A new packet (fresh id) with copied headers and metadata."""
        clone = Packet(
            src=self.src,
            dst=self.dst,
            headers=self.headers.copy(),
            payload=self.payload,
            payload_bytes=self.payload_bytes,
            meta=dict(self.meta),
        )
        return clone

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B {self.headers!r}>"
        )
