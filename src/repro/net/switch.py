"""A store-and-forward Ethernet switch (the testbed's Arista DCS-7124S).

The switch receives packets from attached links, looks up the egress
port by destination node name, charges a fixed switching latency, and
forwards out of per-port FIFO queues.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..obs import Tracer
from ..sim import Environment, Store
from .link import Link
from .packet import Packet


class SwitchStats:
    def __init__(self) -> None:
        self.packets_forwarded = 0
        self.packets_flooded = 0
        self.packets_dropped_unknown = 0
        self.packets_dropped_partition = 0


class Switch:
    """A named switch with a destination-keyed forwarding table."""

    def __init__(
        self,
        env: Environment,
        name: str = "switch",
        switching_latency: float = 800e-9,
    ) -> None:
        self.env = env
        self.name = name
        self.switching_latency = switching_latency
        self._links: Dict[str, Link] = {}  # peer node -> link
        self._table: Dict[str, str] = {}  # dst node -> peer node (port)
        self._pipeline: Store = Store(env)
        #: Node -> partition-group index; None means no active partition.
        self._partition: Optional[Dict[str, int]] = None
        #: Pipeline-entry timestamps for traced packets only.
        self._entry_ts: Dict[int, float] = {}
        self.stats = SwitchStats()
        env.process(self._forwarder())

    def attach_link(self, link: Link, peer: str) -> None:
        """Attach a link whose far endpoint is node ``peer``."""
        self._links[peer] = link
        link.attach(self.name, self._receive)
        self._table[peer] = peer

    def add_route(self, dst: str, via_peer: str) -> None:
        """Route packets for ``dst`` out of the port facing ``via_peer``."""
        if via_peer not in self._links:
            raise ValueError(f"no port towards {via_peer!r}")
        self._table[dst] = via_peer

    @property
    def ports(self) -> list:
        return sorted(self._links)

    # -- partitions ------------------------------------------------------

    def set_partition(self, *groups: Iterable[str]) -> None:
        """Split the fabric: packets between distinct groups are dropped.

        Each argument is an iterable of node names forming one side of
        the partition; nodes not named in any group default to the
        first group, so callers only need to enumerate the minority
        side(s).
        """
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[name] = index
        self._partition = mapping

    def heal_partition(self) -> None:
        """Remove any active partition; full connectivity resumes."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def _crosses_partition(self, src: str, dst: str) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src, 0) != self._partition.get(dst, 0)

    def _receive(self, packet: Packet) -> None:
        if self.env.tracer is not None and Tracer.context(packet)[0]:
            self._entry_ts[id(packet)] = self.env.now
        self._pipeline.put(packet)

    def _trace_hop(self, packet: Packet, entered_at,
                   verdict: str) -> None:
        tracer = self.env.tracer
        if tracer is None or entered_at is None:
            return
        trace_id, parent = Tracer.context(packet)
        if not trace_id:
            return
        tracer.end(tracer.begin(
            "net.switch", "net", trace_id=trace_id, parent=parent,
            node=self.name, start=entered_at,
            tags={"verdict": verdict, "dst": packet.dst},
        ))

    def _forwarder(self):
        while True:
            packet = yield self._pipeline.get()
            entered_at = (self._entry_ts.pop(id(packet), None)
                          if self._entry_ts else None)
            yield self.env.timeout(self.switching_latency)
            peer = self._table.get(packet.dst)
            if peer is None:
                self.stats.packets_dropped_unknown += 1
                self._trace_hop(packet, entered_at, "dropped_unknown")
                continue
            if self._crosses_partition(packet.src, peer):
                self.stats.packets_dropped_partition += 1
                self._trace_hop(packet, entered_at, "dropped_partition")
                continue
            packet.stamp(self.name, self.env.now)
            self.stats.packets_forwarded += 1
            self._trace_hop(packet, entered_at, "forwarded")
            self._links[peer].send(self.name, packet)
