"""Topology builder: nodes connected through a single switch.

This mirrors the paper's testbed (Figure 5): a master plus worker nodes
all connected to one 10 G switch. Nodes register a receive handler; the
:class:`Network` wires links both ways and exposes a uniform ``send``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim import Environment
from .link import Link
from .packet import Packet, reset_packet_ids
from .switch import Switch

#: Default link speed in the paper's testbed.
TEN_GBPS = 10e9


class Node:
    """A network endpoint (host NIC port or SmartNIC port)."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.handler: Optional[Callable[[Packet], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0

    def attach(self, handler: Callable[[Packet], None]) -> None:
        """Set the callable invoked for every packet addressed here."""
        self.handler = handler

    def send(self, packet: Packet) -> None:
        """Transmit a packet into the network."""
        self.tx_packets += 1
        self.network.send_from(self.name, packet)

    def _deliver(self, packet: Packet) -> None:
        self.rx_packets += 1
        if self.handler is None:
            raise RuntimeError(f"node {self.name!r} has no handler attached")
        self.handler(packet)


class Network:
    """A star topology around one switch, as in the paper's testbed."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = TEN_GBPS,
        propagation_delay: float = 500e-9,
        switching_latency: float = 800e-9,
        drop_probability: float = 0.0,
        rng=None,
    ) -> None:
        # Mirror the per-link determinism guard: a lossy fabric without
        # an explicit RNG would silently never drop (Link only rolls the
        # dice when it has an rng), breaking reproducibility contracts.
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if drop_probability > 0 and rng is None:
            raise ValueError("a drop probability requires an rng")
        self.env = env
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.drop_probability = drop_probability
        self.rng = rng
        # Shard isolation: packet numbering restarts per network so a
        # testbed's packet ids are independent of process history (the
        # same shard must look identical inline and in a pool worker).
        reset_packet_ids()
        self.switch = Switch(env, switching_latency=switching_latency)
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}

    def add_node(self, name: str) -> Node:
        """Create a node and cable it to the switch."""
        if name in self._nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self, name)
        link = Link(
            self.env,
            a=name,
            b=self.switch.name,
            bandwidth_bps=self.bandwidth_bps,
            propagation_delay=self.propagation_delay,
            drop_probability=self.drop_probability,
            rng=self.rng,
        )
        link.attach(name, node._deliver)
        self.switch.attach_link(link, peer=name)
        self._nodes[name] = node
        self._links[name] = link
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    @property
    def nodes(self) -> list:
        return sorted(self._nodes)

    def send_from(self, src: str, packet: Packet) -> None:
        """Inject ``packet`` onto ``src``'s uplink towards the switch."""
        if src not in self._links:
            raise KeyError(f"unknown node {src!r}")
        packet.stamp(src, self.env.now)
        self._links[src].send(src, packet)

    def link_stats(self, name: str):
        """Uplink (node->switch) transmit stats for ``name``."""
        return self._links[name].stats(name)

    # -- fault injection hooks -------------------------------------------

    def link(self, name: str) -> Link:
        """The cable between node ``name`` and the switch."""
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def set_link_state(self, name: str, up: bool) -> None:
        """Cut or restore the cable between ``name`` and the switch."""
        self.link(name).set_state(up)

    def link_up(self, name: str) -> bool:
        return self.link(name).up

    def partition(self, *groups) -> None:
        """Partition the switch fabric (see :meth:`Switch.set_partition`)."""
        self.switch.set_partition(*groups)

    def heal_partition(self) -> None:
        self.switch.heal_partition()
