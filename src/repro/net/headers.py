"""Packet header machinery and the standard header stack.

Headers are lightweight field containers with a declared byte size, so
packet sizes (and thus serialization delays) are accounted for exactly.
The λ-NIC gateway prepends a :class:`LambdaHeader` carrying the workload
ID that the NIC's match stage dispatches on (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar


@dataclass
class Header:
    """Base class for all headers; subclasses declare ``BYTES``."""

    BYTES: ClassVar[int] = 0

    @property
    def size_bytes(self) -> int:
        return self.BYTES

    @property
    def name(self) -> str:
        return type(self).__name__

    def field_names(self) -> list:
        return [f.name for f in fields(self)]


@dataclass
class EthernetHeader(Header):
    """L2 header."""

    BYTES: ClassVar[int] = 14
    src_mac: str = ""
    dst_mac: str = ""
    ethertype: int = 0x0800


@dataclass
class IPv4Header(Header):
    """L3 header (options-free)."""

    BYTES: ClassVar[int] = 20
    src_ip: str = ""
    dst_ip: str = ""
    protocol: int = 17
    ttl: int = 64


@dataclass
class UDPHeader(Header):
    """L4 datagram header."""

    BYTES: ClassVar[int] = 8
    src_port: int = 0
    dst_port: int = 0
    length: int = 0


@dataclass
class TCPHeader(Header):
    """L4 stream header (used only by host-backend cost modelling)."""

    BYTES: ClassVar[int] = 20
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0


@dataclass
class LambdaHeader(Header):
    """λ-NIC dispatch header inserted by the gateway (paper §4.1).

    ``wid`` selects the lambda in the NIC's match stage. ``request_id``
    pairs responses with requests; ``seq``/``total_segments`` support
    multi-packet RPCs that are reordered on the NIC (paper fn. 3).
    """

    BYTES: ClassVar[int] = 16
    wid: int = 0
    request_id: int = 0
    seq: int = 0
    total_segments: int = 1
    is_response: bool = False


@dataclass
class RpcHeader(Header):
    """Application RPC header: method + tiny key/value scratch fields."""

    BYTES: ClassVar[int] = 24
    method: str = ""
    key: str = ""
    status: int = 0


@dataclass
class RdmaHeader(Header):
    """RoCEv2-style RDMA write header (BTH + RETH, abbreviated)."""

    BYTES: ClassVar[int] = 28
    opcode: str = "WRITE"
    remote_address: int = 0
    length: int = 0
    qp: int = 0


@dataclass
class ServerHdr(Header):
    """The web-server workload's response-address header (Listing 2)."""

    BYTES: ClassVar[int] = 8
    address: int = 0


STANDARD_HEADERS = (
    EthernetHeader,
    IPv4Header,
    UDPHeader,
    TCPHeader,
    LambdaHeader,
    RpcHeader,
    RdmaHeader,
    ServerHdr,
)

_BY_NAME = {cls.__name__: cls for cls in STANDARD_HEADERS}


def header_class(name: str) -> type:
    """Look up a standard header class by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown header type {name!r}") from None


class HeaderStack:
    """An ordered collection of headers with name-based access."""

    def __init__(self, headers=()) -> None:
        self._headers = list(headers)

    def push(self, header: Header) -> None:
        """Append ``header`` as the innermost header."""
        self._headers.append(header)

    def insert_after(self, name: str, header: Header) -> None:
        """Insert ``header`` right after the header named ``name``."""
        for index, existing in enumerate(self._headers):
            if existing.name == name:
                self._headers.insert(index + 1, header)
                return
        raise KeyError(f"no header named {name!r}")

    def get(self, name: str):
        """The first header of type ``name``, or None."""
        for header in self._headers:
            if header.name == name:
                return header
        return None

    def require(self, name: str) -> Header:
        """The first header of type ``name``; raises if absent."""
        header = self.get(name)
        if header is None:
            raise KeyError(f"packet has no {name} header")
        return header

    def remove(self, name: str) -> Header:
        """Remove and return the first header of type ``name``."""
        for index, existing in enumerate(self._headers):
            if existing.name == name:
                return self._headers.pop(index)
        raise KeyError(f"no header named {name!r}")

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self):
        return iter(self._headers)

    def __len__(self) -> int:
        return len(self._headers)

    @property
    def size_bytes(self) -> int:
        return sum(header.size_bytes for header in self._headers)

    def copy(self) -> "HeaderStack":
        """Shallow-ish copy: header objects are re-instantiated."""
        import copy as _copy

        return HeaderStack([_copy.copy(header) for header in self._headers])

    def __repr__(self) -> str:
        names = "/".join(header.name for header in self._headers)
        return f"<HeaderStack {names}>"
