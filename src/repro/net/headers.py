"""Packet header machinery and the standard header stack.

Headers are lightweight field containers with a declared byte size, so
packet sizes (and thus serialization delays) are accounted for exactly.
The λ-NIC gateway prepends a :class:`LambdaHeader` carrying the workload
ID that the NIC's match stage dispatches on (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, Optional, Tuple


@dataclass
class Header:
    """Base class for all headers; subclasses declare ``BYTES``.

    ``FIELD_RANGES`` declares the on-wire value range of each numeric
    field (inclusive ``(lo, hi)``), i.e. what the field's bit width in
    the packet format guarantees. The static verifier seeds its interval
    analysis from these declarations, so keep them faithful to the wire
    encoding; fields that are not listed (strings, unconstrained values)
    are treated as unknown.
    """

    BYTES: ClassVar[int] = 0
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {}

    @property
    def size_bytes(self) -> int:
        return self.BYTES

    @property
    def name(self) -> str:
        return type(self).__name__

    def field_names(self) -> list:
        return [f.name for f in fields(self)]


@dataclass
class EthernetHeader(Header):
    """L2 header."""

    BYTES: ClassVar[int] = 14
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "ethertype": (0, 0xFFFF),
    }
    src_mac: str = ""
    dst_mac: str = ""
    ethertype: int = 0x0800


@dataclass
class IPv4Header(Header):
    """L3 header (options-free)."""

    BYTES: ClassVar[int] = 20
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "protocol": (0, 0xFF),
        "ttl": (0, 0xFF),
    }
    src_ip: str = ""
    dst_ip: str = ""
    protocol: int = 17
    ttl: int = 64


@dataclass
class UDPHeader(Header):
    """L4 datagram header."""

    BYTES: ClassVar[int] = 8
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "src_port": (0, 0xFFFF),
        "dst_port": (0, 0xFFFF),
        "length": (0, 0xFFFF),
    }
    src_port: int = 0
    dst_port: int = 0
    length: int = 0


@dataclass
class TCPHeader(Header):
    """L4 stream header (used only by host-backend cost modelling)."""

    BYTES: ClassVar[int] = 20
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "src_port": (0, 0xFFFF),
        "dst_port": (0, 0xFFFF),
        "seq": (0, 0xFFFFFFFF),
        "ack": (0, 0xFFFFFFFF),
        "flags": (0, 0x1FF),
    }
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0


@dataclass
class LambdaHeader(Header):
    """λ-NIC dispatch header inserted by the gateway (paper §4.1).

    ``wid`` selects the lambda in the NIC's match stage. ``request_id``
    pairs responses with requests; ``seq``/``total_segments`` support
    multi-packet RPCs that are reordered on the NIC (paper fn. 3).
    """

    BYTES: ClassVar[int] = 16
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "wid": (0, 0xFFFFFFFF),
        "request_id": (0, 0xFFFFFFFF),
        "seq": (0, 0xFFFF),
        "total_segments": (1, 0xFFFF),
        "is_response": (0, 1),
    }
    wid: int = 0
    request_id: int = 0
    seq: int = 0
    total_segments: int = 1
    is_response: bool = False


@dataclass
class RpcHeader(Header):
    """Application RPC header: method + tiny key/value scratch fields."""

    BYTES: ClassVar[int] = 24
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "status": (0, 0xFFFF),
    }
    method: str = ""
    key: str = ""
    status: int = 0


@dataclass
class RdmaHeader(Header):
    """RoCEv2-style RDMA write header (BTH + RETH, abbreviated)."""

    BYTES: ClassVar[int] = 28
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "remote_address": (0, 2**64 - 1),
        "length": (0, 0xFFFFFFFF),
        "qp": (0, 0xFFFFFF),
    }
    opcode: str = "WRITE"
    remote_address: int = 0
    length: int = 0
    qp: int = 0


@dataclass
class ServerHdr(Header):
    """The web-server workload's response-address header (Listing 2)."""

    BYTES: ClassVar[int] = 8
    FIELD_RANGES: ClassVar[Dict[str, Tuple[int, int]]] = {
        "address": (0, 2**64 - 1),
    }
    address: int = 0


STANDARD_HEADERS = (
    EthernetHeader,
    IPv4Header,
    UDPHeader,
    TCPHeader,
    LambdaHeader,
    RpcHeader,
    RdmaHeader,
    ServerHdr,
)

_BY_NAME = {cls.__name__: cls for cls in STANDARD_HEADERS}


def header_class(name: str) -> type:
    """Look up a standard header class by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown header type {name!r}") from None


def declared_field_range(header: str, field_name: str) -> Optional[Tuple[int, int]]:
    """The declared ``(lo, hi)`` wire range of a standard header field.

    Returns None for unknown headers and undeclared fields — the caller
    (the verifier's interval analysis) must treat those as unbounded.
    """
    cls = _BY_NAME.get(header)
    if cls is None:
        return None
    return cls.FIELD_RANGES.get(field_name)


class HeaderStack:
    """An ordered collection of headers with name-based access."""

    def __init__(self, headers=()) -> None:
        self._headers = list(headers)

    def push(self, header: Header) -> None:
        """Append ``header`` as the innermost header."""
        self._headers.append(header)

    def insert_after(self, name: str, header: Header) -> None:
        """Insert ``header`` right after the header named ``name``."""
        for index, existing in enumerate(self._headers):
            if existing.name == name:
                self._headers.insert(index + 1, header)
                return
        raise KeyError(f"no header named {name!r}")

    def get(self, name: str):
        """The first header of type ``name``, or None."""
        for header in self._headers:
            if header.name == name:
                return header
        return None

    def require(self, name: str) -> Header:
        """The first header of type ``name``; raises if absent."""
        header = self.get(name)
        if header is None:
            raise KeyError(f"packet has no {name} header")
        return header

    def remove(self, name: str) -> Header:
        """Remove and return the first header of type ``name``."""
        for index, existing in enumerate(self._headers):
            if existing.name == name:
                return self._headers.pop(index)
        raise KeyError(f"no header named {name!r}")

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self):
        return iter(self._headers)

    def __len__(self) -> int:
        return len(self._headers)

    @property
    def size_bytes(self) -> int:
        return sum(header.size_bytes for header in self._headers)

    def copy(self) -> "HeaderStack":
        """Shallow-ish copy: header objects are re-instantiated."""
        import copy as _copy

        return HeaderStack([_copy.copy(header) for header in self._headers])

    def __repr__(self) -> str:
        names = "/".join(header.name for header in self._headers)
        return f"<HeaderStack {names}>"
