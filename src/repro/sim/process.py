"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator that yields :class:`Event`
objects. The process suspends on each yielded event and resumes when that
event fires; the event's value becomes the value of the ``yield``
expression. A process is itself an event that fires when the generator
returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Event, Environment, SimulationError, URGENT, _PENDING


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """Whatever was passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class Initialize(Event):
    """Starts a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: Environment, process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, URGENT)


class Interruption(Event):
    """Immediately schedules an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.process = process
        self.callbacks = [self._interrupt]
        self.env.schedule(self, URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # Terminated in the meantime; the interrupt is moot.
        # Detach the process from whatever event it is waiting for, then
        # resume it with the failure so the generator sees the Interrupt.
        if process._target is not None and process._target.callbacks is not None:
            process._target.callbacks.remove(process._resume)
        process._resume(self)


class Process(Event):
    """An active component driven by a generator of events."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                self.defused = False
                self.env.schedule(self)
                break

            if not isinstance(target, Event):
                self._fail_bad_yield(target)
                break
            if target is self:
                self._fail_bad_yield(target)
                break
            if target.callbacks is not None:
                # Not yet processed: park until it fires.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: continue immediately with its value.
            event = target

        self.env._active_process = None

    def _fail_bad_yield(self, target: Any) -> None:
        error = SimulationError(f"process yielded an invalid target {target!r}")
        self._ok = False
        self._value = error
        self.defused = False
        self.env.schedule(self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        return f"<Process({name})>"
