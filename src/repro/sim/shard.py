"""Sharded simulation: partition one experiment across processes.

A cluster experiment that is *partitionable* — no packet ever crosses
between two partitions — can be simulated as independent shards, one
discrete-event kernel per shard, executed across ``multiprocessing``
workers and merged afterwards. This module owns the generic machinery:

``ShardSpec``
    What one shard needs to reconstruct its slice of the experiment
    deterministically: its index, the shard count, a per-shard seed
    derived from the experiment seed, and the experiment parameters.

``owner_of`` / ``split_arrivals``
    The request-id ownership function. Every request id is owned by
    exactly one shard (``request_id % n_shards``), so any stream of
    requests splits into disjoint, covering sub-streams — the
    invariant the sharded-vs-monolithic differential harness rests on.

``run_shards``
    Executes a picklable worker over every spec, either inline in this
    process (the determinism baseline: shard results must not depend
    on *where* they ran) or across a process pool, and returns results
    in shard order so merges are reproducible byte-for-byte.

The aggregation layer is ``repro.obs``: each worker returns a
picklable payload (typically a :class:`~repro.obs.MetricsRegistry`
plus summary numbers) and the caller folds them with
``MetricsRegistry.merge`` / ``TraceCollection.extend`` — both
commutative, so shard completion order cannot leak into results.

This module deliberately knows nothing about testbeds or gateways:
the experiment layer (``repro.experiments.scale_sweep``) supplies the
worker function. Keeping the dependency one-way (experiments -> sim)
avoids an import cycle and keeps the kernel importable in worker
processes before the heavyweight packages load.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ShardSpec",
    "make_shard_specs",
    "owner_of",
    "split_arrivals",
    "shard_seed",
    "run_shards",
    "default_processes",
]


def shard_seed(seed: int, index: int) -> int:
    """The derived seed for shard ``index`` of an experiment.

    Uses the same SHA-256 derivation as :class:`~repro.sim.rng.RngRegistry`
    namespacing, so shard seeds are independent of each other and of
    every in-shard stream name, and stable across platforms (unlike
    ``hash()``).
    """
    digest = hashlib.sha256(f"{seed}:shard:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard worker needs, picklable by construction."""

    index: int
    n_shards: int
    #: Per-shard seed (see :func:`shard_seed`); the *experiment* seed
    #: travels in ``params`` when workers need it (e.g. to regenerate
    #: the shared arrival stream).
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0 <= self.index < self.n_shards:
            raise ValueError(
                f"shard index {self.index} outside [0, {self.n_shards})"
            )

    def owns(self, request_id: int) -> bool:
        """True when this shard owns ``request_id``."""
        return request_id % self.n_shards == self.index


def make_shard_specs(n_shards: int, seed: int,
                     params: Optional[Dict[str, Any]] = None) -> List[ShardSpec]:
    """Specs for every shard of an ``n_shards``-way experiment."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return [
        ShardSpec(index=index, n_shards=n_shards,
                  seed=shard_seed(seed, index), params=dict(params or {}))
        for index in range(n_shards)
    ]


def owner_of(request_id: int, n_shards: int) -> int:
    """The shard owning ``request_id``: a total, deterministic map.

    Modulo assignment keeps per-shard load balanced for sequential
    request ids and — crucially — depends only on the id, never on
    time, shard state, or randomness, so ownership can be recomputed
    anywhere (parent process, worker, test harness) with no
    coordination.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return request_id % n_shards


def split_arrivals(arrivals: Iterable, n_shards: int,
                   key: Callable[[Any], int] = None) -> List[List]:
    """Partition an arrival stream into per-shard sub-streams.

    ``key`` extracts the request id from one arrival record (defaults
    to ``record.request_id``). The result is a true partition: every
    record lands in exactly one shard's list, in original stream
    order, so ``sum(len(s) for s in shards) == len(stream)`` always.
    """
    if key is None:
        key = lambda record: record.request_id
    shards: List[List] = [[] for _ in range(n_shards)]
    for record in arrivals:
        shards[key(record) % n_shards].append(record)
    return shards


def default_processes(n_shards: int) -> int:
    """Process-pool size: one worker per shard, capped by cores."""
    cores = os.cpu_count() or 1
    return max(1, min(n_shards, cores))


def run_shards(
    worker: Callable[[ShardSpec], Any],
    specs: Sequence[ShardSpec],
    processes: Optional[int] = None,
    method: Optional[str] = None,
    inline: bool = False,
) -> List[Any]:
    """Run ``worker`` over every spec; results in shard order.

    ``inline=True`` executes sequentially in this process — the
    differential baseline proving results are a pure function of the
    spec, not of the process they ran in. Otherwise a process pool of
    ``processes`` workers (default: one per shard, capped at the core
    count) runs them via the ``method`` start method (default:
    ``fork`` where available — workers inherit warm imports — else
    ``spawn``).

    ``worker`` must be picklable (a module-level function) and must
    build *all* of its state from the spec: any ambient state it reads
    would differ between inline and pooled execution and break the
    equivalence the harness checks.
    """
    specs = list(specs)
    if [spec.index for spec in specs] != list(range(len(specs))) or \
            any(spec.n_shards != len(specs) for spec in specs):
        raise ValueError("specs must be complete and in shard order")
    if inline or len(specs) <= 1:
        return [worker(spec) for spec in specs]
    if method is None:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
    context = multiprocessing.get_context(method)
    n_procs = processes if processes is not None else default_processes(len(specs))
    with context.Pool(processes=max(1, n_procs)) as pool:
        # map() preserves input order, so merges downstream see shards
        # 0..N-1 regardless of completion order.
        return pool.map(worker, specs)
