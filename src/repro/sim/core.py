"""Discrete-event simulation kernel.

This module provides the event loop at the heart of the reproduction: a
deterministic, priority-ordered event calendar (:class:`Environment`) and
the base :class:`Event` type. The design follows the classic
process-interaction style (as popularised by SimPy) but is implemented
from scratch so the repository has no runtime dependencies beyond numpy.

All simulated time is a ``float`` in **seconds**. Events scheduled at the
same timestamp are processed in (priority, insertion-order) order, which
makes every run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Iterable, List, Optional

#: Hoisted heapq entry points: the scheduler touches these once per
#: event, so the module-attribute lookups are worth avoiding.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Reference counting is how the event pool proves a processed timeout
#: has no external holders (CPython only; on other runtimes the pool
#: simply never recycles, which is merely slower, never wrong).
_getrefcount = getattr(sys, "getrefcount", None)

#: Scheduling priority for bookkeeping events that must run before any
#: ordinary event at the same timestamp (e.g. process initialisation).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at ``until``."""


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once it has a value
    (or an exception) and has been scheduled, and becomes *processed*
    once its callbacks have run.

    Events are the highest-churn allocation in the simulator (every
    timeout, resource grant, and process step creates one), so the core
    event types declare ``__slots__``. Subclasses defined elsewhere
    (resource requests, store operations) still get a ``__dict__`` and
    may attach ad-hoc attributes as before.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: When an event fails, somebody must "defuse" it (handle the
        #: exception) or the environment re-raises it at process time.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are the single highest-churn allocation in the simulator
    (every service time, link delay, and think-time gap creates one),
    so environments recycle them through a bounded :class:`EventPool`:
    once a timeout has been processed and provably has no remaining
    holders, its object is reset and reused by a later
    :meth:`Environment.timeout` call instead of allocating afresh.
    """

    __slots__ = ("_delay", "_cancelled", "_pooled")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._cancelled = False
        self._pooled = env._pool is not None
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def cancel(self) -> None:
        """Cancel a pending timeout: its callbacks will never run.

        The timeout stays on the calendar until its timestamp is
        reached, at which point the scheduler discards it (returning it
        to the event pool when possible) without invoking callbacks or
        advancing the clock for it. Only the exclusive owner of a
        timeout may cancel it — anything still waiting on the event
        (a parked process, a condition) would wait forever.
        """
        if self.callbacks is None:
            raise SimulationError("cannot cancel a processed timeout")
        if not self._cancelled:
            self._cancelled = True
            self.env._n_cancelled += 1

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class EventPool:
    """A bounded free-list of recycled :class:`Timeout` events.

    The scheduler returns a processed timeout here only when a
    refcount probe proves nothing else references it, so reuse can
    never resurrect an event some condition value or process still
    holds. Released events are scrubbed (callbacks detached, value
    cleared) before they enter the free list, and the list is bounded
    by ``max_size`` — a burst of simultaneous timeouts cannot pin
    memory forever.
    """

    __slots__ = ("max_size", "_free", "reused", "recycled", "discarded")

    def __init__(self, max_size: int = 4096) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = max_size
        self._free: List[Timeout] = []
        #: Times a timeout was served from the free list.
        self.reused = 0
        #: Times a processed timeout was returned to the free list.
        self.recycled = 0
        #: Times a recyclable timeout was dropped because the pool was full.
        self.discarded = 0

    def __len__(self) -> int:
        return len(self._free)

    def _release(self, event: Timeout) -> None:
        """Scrub ``event`` and add it to the free list (or drop it)."""
        event.callbacks = None
        event._value = _PENDING
        event._ok = True
        event.defused = False
        event._cancelled = False
        if len(self._free) < self.max_size:
            self._free.append(event)
            self.recycled += 1
        else:
            self.discarded += 1


class ConditionValue:
    """Ordered mapping of events to values for condition results.

    Iteration order is the condition's sub-event order; membership is
    answered from a parallel set so ``in`` and ``[]`` stay O(1) even
    for wide fan-in conditions.
    """

    __slots__ = ("events", "_members")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._members: set = set()

    def add(self, event: Event) -> None:
        """Append ``event`` preserving order (idempotent)."""
        if event not in self._members:
            self.events.append(event)
            self._members.add(event)

    def __getitem__(self, key: Event) -> Any:
        if key not in self._members:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[Event]:
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    ``evaluate`` receives (events, triggered_count) and returns True when
    the condition is met. :class:`AllOf` and :class:`AnyOf` are the two
    standard instantiations.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
            return
        # One bound-method lookup for the whole fan-in, not one per event.
        check = self._check
        for event in self._events:
            if event.processed:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.triggered:
                value.add(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires once every sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires once any sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Environment:
    """The simulation environment: clock plus event calendar.

    The calendar is split in two: a timestamp-keyed heap for events in
    the future, and two FIFO "immediate" queues (one per priority) for
    the zero-delay schedules that dominate event traffic — every
    ``succeed``/``fail``, process resume, and resource grant lands at
    the current instant. Immediate events bypass the heap entirely
    (O(1) deque ops instead of O(log n) sifts) while preserving the
    exact global (time, priority, insertion-order) processing order,
    so runs remain bit-for-bit identical to the single-heap kernel.

    ``event_pool`` enables :class:`Timeout` recycling through a
    bounded :class:`EventPool` (on by default; pass ``False`` for the
    allocate-always legacy behaviour, which the perf harness uses as
    its regression baseline).
    """

    def __init__(self, initial_time: float = 0.0,
                 event_pool: bool = True, pool_size: int = 4096) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        #: Immediate (delay == 0) events, processed at ``_now`` in
        #: (priority, eid) order ahead of any later heap entry.
        self._now_urgent: "deque" = deque()
        self._now_normal: "deque" = deque()
        self._pool: Optional[EventPool] = (
            EventPool(pool_size) if event_pool and _getrefcount is not None
            else None
        )
        #: Count of not-yet-reaped cancelled timeouts; lets the hot
        #: loop skip the cancellation check entirely in the (typical)
        #: run where nothing is ever cancelled.
        self._n_cancelled = 0
        self._eid = 0
        self._active_process = None
        #: Observability hook: a :class:`repro.obs.Tracer` reading this
        #: clock, or None (the default — instrumented components guard
        #: with one attribute load + None check, so tracing is
        #: zero-cost when disabled). The tracer only *reads* ``now``;
        #: it never schedules events, so enabling it cannot perturb
        #: the simulation.
        self.tracer = None

    def set_tracer(self, tracer) -> None:
        """Install (or, with ``None``, remove) the span tracer."""
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Place a triggered event on the calendar."""
        self._eid += 1
        if delay == 0.0:
            if priority == NORMAL:
                self._now_normal.append((self._eid, event))
            elif priority == URGENT:
                self._now_urgent.append((self._eid, event))
            else:
                _heappush(self._queue,
                          (self._now, priority, self._eid, event))
        else:
            _heappush(self._queue,
                      (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf``."""
        if self._now_urgent or self._now_normal:
            return self._now
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next event on the calendar."""
        queue = self._queue
        urgent = self._now_urgent
        normal = self._now_normal
        pool = self._pool
        while True:
            from_heap = False
            if queue:
                head = queue[0]
                if urgent:
                    cand, cprio = urgent, URGENT
                elif normal:
                    cand, cprio = normal, NORMAL
                else:
                    cand = None
                # The heap entry runs first only when it is due *now*
                # and its (priority, eid) beats the best immediate
                # event; immediate queues are always at the current
                # instant, so a future-dated heap head cannot win.
                if cand is None or (
                    head[0] == self._now
                    and (head[1] < cprio
                         or (head[1] == cprio and head[2] < cand[0][0]))
                ):
                    event = _heappop(queue)[3]
                    etime = head[0]
                    from_heap = True
                # ``head`` is the very tuple heappop just removed; drop
                # the binding so the recycle probe's refcount isn't
                # inflated by it.
                head = None
                if not from_heap:
                    event = cand.popleft()[1]
            elif urgent:
                event = urgent.popleft()[1]
            elif normal:
                event = normal.popleft()[1]
            else:
                raise EmptySchedule()
            if self._n_cancelled and event.__class__ is Timeout \
                    and event._cancelled:
                # Discarded without running callbacks or advancing the
                # clock — a cancelled timeout was never here.
                self._n_cancelled -= 1
                if pool is not None and event._pooled \
                        and _getrefcount(event) == 2:
                    pool._release(event)
                continue
            if from_heap:
                self._now = etime
            break
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            raise exc
        # Recycle the processed timeout if nothing else can see it:
        # exactly two references means the local above plus the probe's
        # own argument — no condition value, process target, or user
        # variable still holds the object.
        if pool is not None and event.__class__ is Timeout \
                and event._pooled and _getrefcount(event) == 2:
            free = pool._free
            if len(free) < pool.max_size:
                event.callbacks = None
                event._value = _PENDING
                event._ok = True
                event.defused = False
                free.append(event)
                pool.recycled += 1
            else:
                pool.discarded += 1

    def run(self, until: Any = None) -> Any:
        """Run until the calendar empties, time ``until``, or event ``until``.

        If ``until`` is an :class:`Event`, returns its value once it fires.
        """
        stop_value = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is not None:
                    until.callbacks.append(self._stop_callback)
                elif until.triggered:
                    return until._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks = [self._stop_callback]
                self.schedule(stop_event, URGENT, at - self._now)
        step = self.step  # hot loop: one bound-method lookup total
        try:
            while True:
                step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "no scheduled events left but until event was not triggered"
                ) from None
        return stop_value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event._value)

    # -- convenience constructors -----------------------------------------

    @property
    def pool(self) -> Optional[EventPool]:
        """The timeout recycling pool (None when disabled)."""
        return self._pool

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        pool = self._pool
        if pool is not None and pool._free:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = pool._free.pop()
            pool.reused += 1
            event.callbacks = []
            event._value = value
            event._ok = True
            event.defused = False
            event._delay = delay
            event._cancelled = False
            self.schedule(event, delay=delay)
            return event
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator) -> "Process":
        """Start a process from a generator of events."""
        from .process import Process

        return Process(self, generator)
