"""Discrete-event simulation kernel used by every substrate in the repo."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    EmptySchedule,
    Environment,
    Event,
    NORMAL,
    SimulationError,
    StopSimulation,
    Timeout,
    URGENT,
)
from .process import Initialize, Interrupt, Process
from .resources import (
    Container,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .rng import RngRegistry, exponential, lognormal_service
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "NORMAL",
    "Preempted",
    "PreemptiveResource",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "Release",
    "Request",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "URGENT",
    "exponential",
    "lognormal_service",
]
