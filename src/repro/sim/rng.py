"""Deterministic random-number streams.

Every stochastic component in the simulation draws from a named stream
derived from a single experiment seed, so runs are reproducible and
components do not perturb each other's randomness when code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for independent, reproducibly seeded random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """A :class:`random.Random` unique to ``name`` (cached)."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry with a seed derived from ``name``."""
        return RngRegistry(_derive_seed(self.seed, name))


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential sample with the given mean (mean <= 0 returns 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def lognormal_service(rng: random.Random, median: float, sigma: float) -> float:
    """Lognormal service time parameterised by median and shape.

    Service-time distributions in interactive systems are right-skewed;
    a lognormal with a small sigma gives the paper-like long tails
    without the extreme variance of a Pareto.
    """
    if median <= 0:
        return 0.0
    return rng.lognormvariate(_ln(median), sigma)


def _ln(value: float) -> float:
    import math

    return math.log(value)
