"""Message stores: FIFO, filtered, and priority item queues.

A :class:`Store` is the basic producer/consumer channel used throughout
the network and host models: ``put(item)`` and ``get()`` return events
that fire once the operation completes. :class:`FilterStore` lets getters
wait for items matching a predicate; :class:`PriorityStore` pops items in
priority order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List

from .core import Event, Environment


class StorePut(Event):
    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class StoreGet(Event):
    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get from the wait queue."""
        waiters = getattr(self, "_waiters", None)
        if waiters is not None and self in waiters:
            waiters.remove(self)


class Store:
    """FIFO item queue with bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the next item; fires once one exists."""
        event = StoreGet(self)
        event._waiters = self._get_waiters
        return event

    # -- internal ----------------------------------------------------------

    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(put.item)
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if self.items:
            get.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and self._do_put(self._put_waiters[0]):
                self._put_waiters.pop(0)
                progressed = True
            if self._get_waiters and self._do_get(self._get_waiters[0]):
                self._get_waiters.pop(0)
                progressed = True


class FilterStoreGet(StoreGet):
    def __init__(self, store: "FilterStore", predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate
        super().__init__(store)


class FilterStore(Store):
    """A store whose getters can wait for items matching a predicate."""

    def get(self, predicate: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:
        event = FilterStoreGet(self, predicate)
        event._waiters = self._get_waiters
        return event

    def _do_get(self, get: StoreGet) -> bool:
        predicate = getattr(get, "predicate", lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                self.items.pop(index)
                get.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        # Unlike the FIFO store, a blocked getter at the head must not
        # starve getters further back whose predicates can be satisfied.
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and self._do_put(self._put_waiters[0]):
                self._put_waiters.pop(0)
                progressed = True
            for get in list(self._get_waiters):
                if self._do_get(get):
                    self._get_waiters.remove(get)
                    progressed = True


class PriorityItem:
    """Wrap an arbitrary item with an orderable priority."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PriorityItem)
            and self.priority == other.priority
            and self.item == other.item
        )

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that releases the smallest item first (heap order)."""

    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, put.item)
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if self.items:
            get.succeed(heapq.heappop(self.items))
            return True
        return False
