"""Shared, capacity-limited resources.

:class:`Resource` models a pool of identical servers (e.g. CPU cores or
NPU threads): processes ``request()`` a slot, wait in FIFO (or priority)
order, and ``release()`` it when done. :class:`Container` models a
continuous quantity (e.g. bytes of memory) with put/get semantics.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .core import Event, Environment, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = resource._next_order()
        resource._queue.append(self)
        resource._queue.sort(key=lambda r: (r.priority, r._order))
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel() if not self.triggered else self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Immediate event confirming a slot release."""

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO/priority queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._queue: List[Request] = []
        self._order = 0

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    @property
    def count(self) -> int:
        """Slots currently held."""
        return len(self.users)

    @property
    def queue(self) -> List[Request]:
        """Requests still waiting (read-only view)."""
        return list(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires once granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Return a previously granted slot."""
        return Release(self, request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self._queue:
            # Released before being granted (e.g. interrupted holder).
            self._queue.remove(request)
        self._trigger_requests()

    def _trigger_requests(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.pop(0)
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """A homogeneous, divisible quantity (fuel-tank semantics)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires once it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires once available."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class Preempted:
    """Cause attached to an interrupt raised by preemption."""

    def __init__(self, by: Any, usage_since: float) -> None:
        self.by = by
        self.usage_since = usage_since

    def __repr__(self) -> str:
        return f"<Preempted by={self.by!r} since={self.usage_since}>"


class PreemptiveResource(Resource):
    """A priority resource where higher-priority requests evict holders.

    Lower numeric ``priority`` wins (as in SimPy). The evicted process —
    the one with the worst priority among current users — receives an
    :class:`~repro.sim.process.Interrupt` whose cause is
    :class:`Preempted`.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._holders: dict = {}

    def request(self, priority: int = 0, preempt: bool = True) -> Request:
        request = Request(self, priority)
        request.preempt = preempt
        request.time = self.env.now
        request.process = self.env.active_process
        if not request.triggered and preempt and self.users:
            victim = max(self.users, key=lambda r: (r.priority, r._order))
            if (victim.priority, victim._order) > (priority, request._order):
                self._do_release(victim)
                process = getattr(victim, "process", None)
                if process is not None and process.is_alive:
                    process.interrupt(Preempted(request.process, victim.time))
        return request

    def release(self, request: Request) -> Release:
        return Release(self, request)
