"""Textual assembly format for lambda IR (round-trippable).

The format exists for debuggability and firmware dumps::

    .lambda web_server entry=web_server
    .object memory size=60 access=read hot
    .func web_server
        hload r1, ServerHdr.address
        resolve r14, [memory+0]
        load r2, r14, [memory+0]
        forward

Grammar is line-oriented; ``#`` starts a comment.
"""

from __future__ import annotations

from typing import Any, List

from .instructions import Instruction, Op, Region, ins
from .program import AccessMode, Function, LambdaProgram, MemoryObject


class AsmError(ValueError):
    """Raised for malformed assembly text."""


def disassemble(program: LambdaProgram) -> str:
    """Render a program as assembly text."""
    lines = [f".lambda {program.name} entry={program.entry}"]
    if program.scratch_registers:
        lines.append(".scratch " + " ".join(sorted(program.scratch_registers)))
    for obj in program.objects.values():
        flags = " hot" if obj.hot else ""
        region = f" region={obj.region.value}" if obj.region is not Region.FLAT else ""
        lines.append(
            f".object {obj.name} size={obj.size_bytes} "
            f"access={obj.access.value}{region}{flags}"
        )
    for function in program.functions.values():
        lines.append(f".func {function.name}")
        for instruction in function.body:
            lines.append(f"    {_render(instruction)}")
    return "\n".join(lines) + "\n"


def assemble(text: str) -> LambdaProgram:
    """Parse assembly text back into a program."""
    name = None
    entry = None
    scratch: List[str] = []
    objects: List[MemoryObject] = []
    functions: List[Function] = []
    current: List[Instruction] = []
    current_name = None

    def close_function():
        nonlocal current, current_name
        if current_name is not None:
            functions.append(Function(current_name, current))
        current, current_name = [], None

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".lambda"):
            parts = line.split()
            name = parts[1]
            for part in parts[2:]:
                if part.startswith("entry="):
                    entry = part.split("=", 1)[1]
        elif line.startswith(".object"):
            parts = line.split()
            obj_name = parts[1]
            size = None
            access = AccessMode.READ_WRITE
            hot = False
            region = Region.FLAT
            for part in parts[2:]:
                if part.startswith("size="):
                    size = int(part.split("=", 1)[1])
                elif part.startswith("access="):
                    access = AccessMode(part.split("=", 1)[1])
                elif part.startswith("region="):
                    region = Region(part.split("=", 1)[1])
                elif part == "hot":
                    hot = True
            if size is None:
                raise AsmError(f"object {obj_name!r} missing size=")
            objects.append(MemoryObject(obj_name, size, access, hot, region))
        elif line.startswith(".scratch"):
            scratch.extend(line.split()[1:])
        elif line.startswith(".func"):
            close_function()
            current_name = line.split()[1]
        else:
            if current_name is None:
                raise AsmError(f"instruction outside .func: {line!r}")
            current.append(_parse_instruction(line))
    close_function()
    if name is None:
        raise AsmError("missing .lambda directive")
    program = LambdaProgram(name, functions, objects, entry=entry,
                            scratch_registers=scratch)
    program.validate()
    return program


def _render(instruction: Instruction) -> str:
    parts = [instruction.op.value]
    rendered = [_render_arg(arg) for arg in instruction.args]
    return parts[0] + (" " + ", ".join(rendered) if rendered else "")


def _render_arg(arg: Any) -> str:
    if isinstance(arg, tuple):
        kind = arg[0]
        if kind == "mem":
            return f"[{arg[1]}+{_render_arg(arg[2])}]"
        if kind == "hdr":
            return f"{arg[1]}.{arg[2]}"
        if kind == "meta":
            return f"meta.{arg[1]}"
        raise AsmError(f"cannot render operand {arg!r}")
    return str(arg)


def _parse_instruction(line: str) -> Instruction:
    mnemonic, _, rest = line.partition(" ")
    try:
        op = Op(mnemonic)
    except ValueError:
        raise AsmError(f"unknown opcode {mnemonic!r}") from None
    args = []
    if rest.strip():
        for token in _split_args(rest):
            args.append(_parse_arg(token.strip()))
    return ins(op, *args)


def _split_args(rest: str) -> List[str]:
    # Commas inside brackets do not occur in this format, so a simple
    # split suffices.
    return [token for token in rest.split(",") if token.strip()]


def _parse_arg(token: str) -> Any:
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1]
        obj, _, offset = inner.partition("+")
        return ("mem", obj, _parse_arg(offset or "0"))
    if token.startswith("meta."):
        return ("meta", token[len("meta."):])
    if "." in token and not _is_number(token):
        header, _, field_name = token.partition(".")
        return ("hdr", header, field_name)
    if _is_number(token):
        return int(token) if "." not in token else float(token)
    return token  # register or label name


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
