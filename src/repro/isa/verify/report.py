"""Verification findings and the aggregate :class:`VerifierReport`."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings make a program unloadable (the admission layer
    rejects it); ``WARNING`` findings are lint-grade; ``INFO`` is
    advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Severity.{self.name}"


#: Stable sort order: errors first.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class Finding:
    """One verifier diagnostic, anchored to a precise location.

    ``index`` is the body index inside ``function`` (the same index the
    interpreter's program counter uses), so a finding points at exactly
    one instruction.
    """

    severity: Severity
    code: str
    message: str
    function: Optional[str] = None
    index: Optional[int] = None
    instruction: Optional[str] = None

    @property
    def location(self) -> str:
        if self.function is None:
            return "<program>"
        if self.index is None:
            return self.function
        return f"{self.function}@{self.index}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "index": self.index,
            "instruction": self.instruction,
        }

    def __str__(self) -> str:
        where = self.location
        tail = f"  [{self.instruction}]" if self.instruction else ""
        return f"{self.severity.value}: {where}: {self.code}: {self.message}{tail}"


@dataclass
class VerifierReport:
    """Everything the verifier proved (or failed to prove) about a program."""

    program: str
    findings: List[Finding] = field(default_factory=list)
    #: Worst-case cycles of one invocation from the entry function;
    #: None when no bound could be established (e.g. an intrinsic with
    #: no static cost model).
    wcet_cycles: Optional[int] = None
    #: Per-function worst-case cycles (callees included).
    function_wcet: Dict[str, Optional[int]] = field(default_factory=dict)
    #: Per-function WCET bound method ("longest-path", "loop-product",
    #: "path-sensitive-loops", or "unknown") — provenance for the
    #: numbers in :attr:`function_wcet`.
    wcet_method: Dict[str, str] = field(default_factory=dict)
    #: Data bytes placed per memory region (region value -> bytes).
    region_footprint: Dict[str, int] = field(default_factory=dict)
    instruction_count: int = 0
    code_bytes: int = 0
    data_bytes: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the program is loadable (no error-grade findings)."""
        return not self.errors

    def wcet_seconds(self, clock_hz: float) -> Optional[float]:
        if self.wcet_cycles is None:
            return None
        return self.wcet_cycles / clock_hz

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (
                _SEVERITY_RANK[f.severity],
                f.function or "",
                f.index if f.index is not None else -1,
                f.code,
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "ok": self.ok,
            "instruction_count": self.instruction_count,
            "code_bytes": self.code_bytes,
            "data_bytes": self.data_bytes,
            "wcet_cycles": self.wcet_cycles,
            "function_wcet": dict(self.function_wcet),
            "wcet_method": dict(self.wcet_method),
            "region_footprint": dict(self.region_footprint),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (the lint CLI's output)."""
        status = "OK" if self.ok else "REJECTED"
        wcet = "unbounded/unknown" if self.wcet_cycles is None else \
            f"{self.wcet_cycles} cycles"
        lines = [
            f"{self.program}: {status} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)",
            f"  instructions: {self.instruction_count} "
            f"({self.code_bytes} B code, {self.data_bytes} B data)",
            f"  wcet: {wcet}",
        ]
        if self.region_footprint:
            layout = ", ".join(
                f"{region}={size}B"
                for region, size in sorted(self.region_footprint.items())
            )
            lines.append(f"  regions: {layout}")
        for finding in self.findings:
            lines.append(f"  {finding}")
        return "\n".join(lines)
