"""Memory-bounds and isolation checks against declared regions.

Every memory operand names a declared :class:`~repro.isa.program.MemoryObject`
(structural validation catches foreign objects — the runtime
``IsolationError``). On top of that, this module proves what it can
about *offsets* using constant propagation:

* a constant offset outside the object is an **error** (the interpreter
  would raise at runtime — the verifier catches it before flashing);
* a store into a declared read-only object is an **error** (the
  ``AccessMode`` contract; the isolation the paper's §4.2.1-D2 pragma
  system promises);
* an offset constant propagation cannot pin is handed to the interval
  analysis (:mod:`.intervals`): a range proven inside the object is
  recorded as an **info**-grade ``proven-offset`` finding (e.g. a
  hash-masked index), a range proven fully outside is an **error**, and
  only a genuinely unbounded or straddling range remains a **warning**;
* per-region data footprints beyond the modelled NIC's capacity are
  **errors**.

The bounds mirror :meth:`Machine.load_word` / :meth:`Machine.store_word`
exactly: word accesses are legal at offsets ``[0, size-1]`` (partial
words are clamped), and ``memcpy`` requires ``offset + n <= size`` on
both sides.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..instructions import Op, REGION_CAPACITY_BYTES, Region, is_mem_ref
from ..program import AccessMode, LambdaProgram, MemoryObject
from .analyses import ConstantStates, NAC, constant_states
from .intervals import Interval, IntervalStates, interval_states
from .report import Finding, Severity


def _finding(severity: Severity, code: str, message: str, function: str,
             index: int, instruction: Any) -> Finding:
    return Finding(
        severity=severity,
        code=code,
        message=message,
        function=function,
        index=index,
        instruction=repr(instruction),
    )


def _word_access(
    findings: List[Finding],
    program: LambdaProgram,
    function: str,
    index: int,
    instruction: Any,
    memref: Tuple[str, str, Any],
    offset_value: Any,
    is_write: bool,
    offset_range: Optional[Interval] = None,
) -> None:
    obj = program.objects.get(memref[1])
    if obj is None:
        return  # Structural validation reports undefined objects.
    kind = "store" if is_write else "load"
    if is_write and obj.access is AccessMode.READ:
        findings.append(_finding(
            Severity.ERROR, "readonly-store",
            f"store into read-only object {obj.name!r}",
            function, index, instruction,
        ))
    if not is_write and obj.access is AccessMode.WRITE:
        findings.append(_finding(
            Severity.WARNING, "writeonly-load",
            f"load from write-only object {obj.name!r}",
            function, index, instruction,
        ))
    if offset_value is NAC:
        size = obj.size_bytes
        r = offset_range
        if r is not None and r.lo is not None and r.hi is not None \
                and r.lo >= 0 and r.hi < size:
            findings.append(_finding(
                Severity.INFO, "proven-offset",
                f"{kind} offset into {obj.name!r} proven in {r} "
                f"(object size {size} B)",
                function, index, instruction,
            ))
            return
        if r is not None and ((r.lo is not None and r.lo >= size)
                              or (r.hi is not None and r.hi < 0)):
            findings.append(_finding(
                Severity.ERROR, f"oob-{kind}",
                f"{kind} offset into {obj.name!r} proven in {r}, entirely "
                f"outside the object (size {size} B)",
                function, index, instruction,
            ))
            return
        detail = f"; best known range {r}" if r is not None \
            and (r.lo is not None or r.hi is not None) else ""
        findings.append(_finding(
            Severity.WARNING, "unknown-offset",
            f"cannot bound {kind} offset into {obj.name!r} "
            f"({obj.size_bytes} B){detail}",
            function, index, instruction,
        ))
        return
    if not isinstance(offset_value, int):
        findings.append(_finding(
            Severity.ERROR, f"oob-{kind}",
            f"non-integer {kind} offset {offset_value!r} into {obj.name!r}",
            function, index, instruction,
        ))
        return
    if offset_value < 0 or offset_value >= obj.size_bytes:
        findings.append(_finding(
            Severity.ERROR, f"oob-{kind}",
            f"{kind} at {obj.name}[{offset_value}] is outside the object "
            f"(size {obj.size_bytes} B)",
            function, index, instruction,
        ))


def _memcpy_side(
    findings: List[Finding],
    program: LambdaProgram,
    function: str,
    index: int,
    instruction: Any,
    memref: Tuple[str, str, Any],
    offset_value: Any,
    length_value: Any,
    is_write: bool,
    offset_range: Optional[Interval] = None,
    length_range: Optional[Interval] = None,
) -> None:
    obj = program.objects.get(memref[1])
    if obj is None:
        return
    if is_write and obj.access is AccessMode.READ:
        findings.append(_finding(
            Severity.ERROR, "readonly-store",
            f"memcpy writes read-only object {obj.name!r}",
            function, index, instruction,
        ))
    if offset_value is NAC or length_value is NAC:
        size = obj.size_bytes
        ro, rn = offset_range, length_range
        if isinstance(offset_value, int):
            ro = Interval(offset_value, offset_value)
        if isinstance(length_value, int):
            rn = Interval(length_value, length_value)
        if ro is not None and rn is not None \
                and ro.lo is not None and ro.lo >= 0 \
                and rn.lo is not None and rn.lo >= 0 \
                and ro.hi is not None and rn.hi is not None \
                and ro.hi + rn.hi <= size:
            findings.append(_finding(
                Severity.INFO, "proven-offset",
                f"memcpy range in {obj.name!r} proven within "
                f"[{ro.lo}, {ro.hi + rn.hi}] (object size {size} B)",
                function, index, instruction,
            ))
            return
        if ro is not None and rn is not None and (
                (ro.lo is not None and rn.lo is not None
                 and ro.lo + rn.lo > size)
                or (ro.hi is not None and ro.hi < 0)):
            findings.append(_finding(
                Severity.ERROR, "oob-memcpy",
                f"memcpy range in {obj.name!r} proven out of bounds "
                f"(offset {ro}, length {rn}, object size {size} B)",
                function, index, instruction,
            ))
            return
        findings.append(_finding(
            Severity.WARNING, "unknown-offset",
            f"cannot bound memcpy range in {obj.name!r}",
            function, index, instruction,
        ))
        return
    if not isinstance(offset_value, int) or not isinstance(length_value, int):
        return
    if offset_value < 0 or offset_value + length_value > obj.size_bytes:
        findings.append(_finding(
            Severity.ERROR, "oob-memcpy",
            f"memcpy range {obj.name}[{offset_value}:"
            f"{offset_value + length_value}] exceeds the object "
            f"(size {obj.size_bytes} B)",
            function, index, instruction,
        ))


def region_footprint(program: LambdaProgram) -> Dict[str, int]:
    """Data bytes per region (region value -> bytes)."""
    footprint: Dict[str, int] = {}
    for obj in program.objects.values():
        key = obj.region.value
        footprint[key] = footprint.get(key, 0) + obj.size_bytes
    return footprint


def check_memory(
    program: LambdaProgram,
    consts: Optional[Dict[str, ConstantStates]] = None,
    ranges: Optional[Dict[str, IntervalStates]] = None,
    use_intervals: bool = True,
) -> List[Finding]:
    """All memory-safety findings for ``program``.

    ``consts`` and ``ranges`` may supply precomputed per-function
    constant / interval states (keyed by function name) to avoid
    re-solving; missing entries are computed on demand. With
    ``use_intervals=False`` no interval analysis runs and offsets that
    constant propagation cannot pin stay ``unknown-offset`` warnings.
    """
    findings: List[Finding] = []
    consts = dict(consts) if consts else {}
    ranges = dict(ranges) if ranges else {}

    for name, function in program.functions.items():
        analysis = consts.get(name)
        if analysis is None:
            analysis = constant_states(function)
            consts[name] = analysis
        intervals = ranges.get(name)
        if intervals is None and use_intervals:
            intervals = interval_states(function, cfg=analysis.cfg,
                                        program=program)
            ranges[name] = intervals

        def range_of(index: int, operand: Any):
            if intervals is None:
                return None
            return intervals.range_before(index, operand)

        for index, instruction in enumerate(function.body):
            op = instruction.op
            if op in (Op.LOAD, Op.LOADD):
                memref = instruction.args[-1]
                if is_mem_ref(memref):
                    offset = analysis.value_before(index, memref[2])
                    _word_access(findings, program, name, index, instruction,
                                 memref, offset, is_write=False,
                                 offset_range=range_of(index, memref[2]))
            elif op in (Op.STORE, Op.STORED):
                memref = instruction.args[-2] if op is Op.STORE \
                    else instruction.args[0]
                if is_mem_ref(memref):
                    offset = analysis.value_before(index, memref[2])
                    _word_access(findings, program, name, index, instruction,
                                 memref, offset, is_write=True,
                                 offset_range=range_of(index, memref[2]))
            elif op is Op.MEMCPY:
                dst_ref, src_ref, length = instruction.args
                length_value = analysis.value_before(index, length)
                length_range = range_of(index, length)
                if is_mem_ref(dst_ref):
                    dst_off = analysis.value_before(index, dst_ref[2])
                    _memcpy_side(findings, program, name, index, instruction,
                                 dst_ref, dst_off, length_value, is_write=True,
                                 offset_range=range_of(index, dst_ref[2]),
                                 length_range=length_range)
                if is_mem_ref(src_ref):
                    src_off = analysis.value_before(index, src_ref[2])
                    _memcpy_side(findings, program, name, index, instruction,
                                 src_ref, src_off, length_value,
                                 is_write=False,
                                 offset_range=range_of(index, src_ref[2]),
                                 length_range=length_range)
            elif op is Op.INTRINSIC:
                _check_intrinsic(findings, program, name, index, instruction)

    for obj in program.objects.values():
        if obj.size_bytes > _region_capacity(obj.region):
            findings.append(Finding(
                severity=Severity.ERROR,
                code="region-capacity",
                message=(
                    f"object {obj.name!r} ({obj.size_bytes} B) exceeds "
                    f"{obj.region.value} capacity"
                ),
                function=None,
            ))
    for region, capacity in REGION_CAPACITY_BYTES.items():
        used = sum(
            obj.size_bytes for obj in program.objects.values()
            if obj.region is region
        )
        if used > capacity:
            findings.append(Finding(
                severity=Severity.ERROR,
                code="region-capacity",
                message=(
                    f"{used} B placed in {region.value} exceeds its "
                    f"{capacity} B capacity"
                ),
                function=None,
            ))
    return findings


def _region_capacity(region: Region) -> int:
    # FLAT objects have not been placed yet; they ultimately cannot
    # exceed the largest backing store (EMEM).
    return REGION_CAPACITY_BYTES.get(region,
                                     REGION_CAPACITY_BYTES[Region.EMEM])


def _check_intrinsic(
    findings: List[Finding],
    program: LambdaProgram,
    function: str,
    index: int,
    instruction: Any,
) -> None:
    from ..interpreter import intrinsic_writes_memory

    name = instruction.args[0]
    for arg in instruction.args[1:]:
        if not is_mem_ref(arg):
            continue
        obj = program.objects.get(arg[1])
        if obj is None:
            continue
        if intrinsic_writes_memory(name) and obj.access is AccessMode.READ:
            findings.append(_finding(
                Severity.ERROR, "readonly-store",
                f"intrinsic {name!r} may write read-only object "
                f"{obj.name!r}",
                function, index, instruction,
            ))
