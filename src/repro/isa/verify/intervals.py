"""Value-range (interval) abstract interpretation over the lambda IR.

The eBPF verifier tracks per-register value ranges so it can prove
bounded memory accesses (``hash & (SIZE-1)``-style masking) instead of
rejecting or warning; this module gives the λ-NIC verifier the same
power. It runs over the generic worklist framework (:mod:`.dataflow`)
with widening (the interval lattice has infinite ascending chains) and
a short narrowing post-pass, plus branch-edge refinement so each CFG
edge carries the facts the branch condition established.

Abstract values
---------------
Every register maps to one of

* :data:`ANY` — the value may be anything :meth:`Machine.read` can
  produce (ints, floats, strings, ``resolve`` address tuples, ...);
* an :class:`Interval` — the value is certainly an ``int`` within the
  inclusive range ``[lo, hi]`` (``None`` endpoints mean unbounded).

The int-only invariant is what makes branch refinement sound in Python:
``1.0 == 1`` is ``True``, so an ``ANY`` value may *not* be promoted to
an interval from an equality test — only values already proven integral
are refined. Transfer functions therefore only produce intervals for
operations whose every non-faulting outcome is an int (bitwise ops and
shifts fault on non-ints; ``hash``/``crc`` and word loads always
produce ints; arithmetic requires both operands proven integral).

Seeding
-------
``hload``/``mload`` results are opaque to constant propagation; here
they are seeded from the packet-format declarations
(:data:`repro.net.headers.Header.FIELD_RANGES` — the on-wire bit
widths) and caller-supplied metadata ranges. :class:`RangeSeeds` scans
the whole program first: a header field written by any ``hstore`` loses
its seed, ``mstore`` keys lose theirs, and any ``intrinsic`` (which
receives the raw machine and may mutate headers and metadata) drops all
seeds. ``trust_declared=False`` disables seeding entirely and keeps
only machine-guaranteed ranges (hash outputs, word loads, immediates) —
that is the mode the JIT uses for bounds-check elision, where a proof
must hold for *any* runtime header contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..instructions import Instruction, Op, is_mem_ref, is_register
from ..program import Function, LambdaProgram
from .analyses import ALL_REGISTERS, instruction_defs
from .cfg import BRANCH_OPS, CFG, BasicBlock, build_cfg
from .dataflow import DataflowProblem, DataflowResult, FORWARD, solve

#: Word loads read up to 8 little-endian bytes -> [0, 2^64 - 1].
_WORD_MAX = 2 ** 64 - 1
#: hash()/crc results are masked with 0xFFFFFFFF by the interpreter.
_HASH_MAX = 0xFFFFFFFF
#: Shift amounts beyond this are treated as unbounded (SHL) or
#: saturated (SHR) instead of materializing astronomically wide bounds.
_SHIFT_CAP = 128
#: Narrowing rounds after the widened fixpoint. Two exact re-applications
#: recover loop-counter bounds that widening blew out to infinity.
_NARROW_ROUNDS = 2


class _AnyValue:
    """Top: the value may be any runtime object (not necessarily int)."""

    _instance: Optional["_AnyValue"] = None

    def __new__(cls) -> "_AnyValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: The unknown abstract value (any type, any value).
ANY = _AnyValue()


@dataclass(frozen=True)
class Interval:
    """An inclusive integer range; ``None`` endpoints are unbounded.

    Denotes *ints only*: a register mapped to an interval certainly
    holds a Python int at runtime (bools count — they are ints).
    """

    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- predicates ---------------------------------------------------------

    @property
    def is_finite(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: Any) -> bool:
        """True when a concrete runtime value lies inside the range."""
        if not isinstance(value, int):  # bool is an int subclass: ok.
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    # -- lattice operations -------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection, or None when empty."""
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: moving endpoints jump to infinity."""
        lo = self.lo if (self.lo is not None and other.lo is not None
                         and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None
                         and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


#: The unconstrained-but-integral interval.
INT_TOP = Interval(None, None)


def to_interval(value: Any) -> Optional[Interval]:
    """The abstract value as an interval, or None when it is ANY."""
    return value if isinstance(value, Interval) else None


def join_values(a: Any, b: Any) -> Any:
    if a is ANY or b is ANY:
        return ANY
    return a.join(b)


def widen_values(a: Any, b: Any) -> Any:
    if a is ANY or b is ANY:
        return ANY
    return a.widen(b)


# ---------------------------------------------------------------------------
# Seeding from packet-format declarations
# ---------------------------------------------------------------------------


@dataclass
class RangeSeeds:
    """What ``hload``/``mload`` results may be assumed to be.

    Built by scanning a whole program (or a single function) for writes
    that invalidate the declared packet-format ranges.
    """

    #: Trust packet-format declarations at all (False: seed nothing —
    #: only machine-guaranteed ranges survive; the JIT's proof mode).
    trust_declared: bool = True
    #: Caller-declared metadata key ranges (trusted like FIELD_RANGES).
    meta_ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (header, field) pairs some ``hstore`` may have overwritten.
    clobbered_fields: FrozenSet[Tuple[str, str]] = frozenset()
    #: metadata keys some ``mstore`` may have overwritten.
    clobbered_meta: FrozenSet[str] = frozenset()

    @classmethod
    def for_program(
        cls,
        program: Optional[LambdaProgram],
        function: Optional[Function] = None,
        meta_ranges: Optional[Dict[str, Tuple[int, int]]] = None,
        trust_declared: bool = True,
    ) -> "RangeSeeds":
        functions = list(program.functions.values()) if program is not None \
            else ([function] if function is not None else [])
        hstores: Set[Tuple[str, str]] = set()
        mstores: Set[str] = set()
        trust = trust_declared
        for fn in functions:
            for instruction in fn.body:
                op = instruction.op
                if op is Op.HSTORE:
                    ref = instruction.args[0]
                    hstores.add((ref[1], ref[2]))
                elif op is Op.MSTORE:
                    mstores.add(instruction.args[0][1])
                elif op is Op.INTRINSIC:
                    # Intrinsics receive the raw machine and may rewrite
                    # headers and metadata wholesale: distrust all seeds.
                    trust = False
                elif op is Op.CALL and program is None:
                    # Unknown callee (function-only scan): it may store
                    # anywhere.
                    trust = False
        return cls(
            trust_declared=trust,
            meta_ranges=dict(meta_ranges or {}),
            clobbered_fields=frozenset(hstores),
            clobbered_meta=frozenset(mstores),
        )

    def header_field(self, header: str, field_name: str) -> Any:
        if not self.trust_declared \
                or (header, field_name) in self.clobbered_fields:
            return ANY
        from ...net.headers import declared_field_range

        declared = declared_field_range(header, field_name)
        if declared is None:
            return ANY
        return Interval(declared[0], declared[1])

    def meta_key(self, key: str) -> Any:
        if not self.trust_declared or key in self.clobbered_meta:
            return ANY
        declared = self.meta_ranges.get(key)
        if declared is None:
            return ANY
        return Interval(declared[0], declared[1])


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


def _interval_add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _interval_sub(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return Interval(lo, hi)


def _interval_mul(a: Interval, b: Interval) -> Interval:
    if not (a.is_finite and b.is_finite):
        return INT_TOP
    corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return Interval(min(corners), max(corners))


def _interval_and(a: Any, b: Any) -> Interval:
    # x & m lies in [0, m] for ANY int x whenever m >= 0 — the mask
    # bound holds even when the other side is unknown (a non-int other
    # side faults, so every continuing execution satisfies the bound).
    best: Optional[int] = None  # None: no nonneg mask side yet.
    bounded = False
    for side in (a, b):
        iv = to_interval(side)
        if iv is not None and iv.lo is not None and iv.lo >= 0:
            bounded = True
            if iv.hi is not None and (best is None or iv.hi < best):
                best = iv.hi
    if bounded:
        return Interval(0, best)
    return INT_TOP


def _interval_or_xor(a: Any, b: Any) -> Interval:
    ia, ib = to_interval(a), to_interval(b)
    if ia is not None and ib is not None \
            and ia.lo is not None and ia.lo >= 0 \
            and ib.lo is not None and ib.lo >= 0:
        if ia.hi is not None and ib.hi is not None:
            bits = max(ia.hi.bit_length(), ib.hi.bit_length())
            return Interval(0, (1 << bits) - 1)
        return Interval(0, None)
    return INT_TOP


def _interval_shl(a: Any, b: Any) -> Interval:
    ia, ib = to_interval(a), to_interval(b)
    if ia is None or ib is None or not ia.is_finite:
        return INT_TOP
    # Negative shift amounts fault; continuing executions have b >= 0.
    b_lo = max(ib.lo or 0, 0) if ib.lo is not None else 0
    if ib.hi is None or ib.hi > _SHIFT_CAP:
        if ia.lo >= 0:
            return Interval(ia.lo << b_lo, None)
        return INT_TOP
    b_hi = max(ib.hi, b_lo)
    corners = [ia.lo << b_lo, ia.lo << b_hi, ia.hi << b_lo, ia.hi << b_hi]
    return Interval(min(corners), max(corners))


def _interval_shr(a: Any, b: Any) -> Interval:
    ia, ib = to_interval(a), to_interval(b)
    if ia is None or ib is None:
        return INT_TOP
    b_lo = max(ib.lo or 0, 0) if ib.lo is not None else 0
    if not ia.is_finite:
        if ia.lo is not None and ia.lo >= 0:
            return Interval(0, None if ia.hi is None else ia.hi >> b_lo)
        return INT_TOP
    # x >> y is monotone in x (fixed y) and monotone in y (fixed x),
    # approaching 0 (x >= 0) or -1 (x < 0) as y grows.
    candidates = [ia.lo >> b_lo, ia.hi >> b_lo]
    if ib.hi is not None and ib.hi <= _SHIFT_CAP:
        b_hi = max(ib.hi, b_lo)
        candidates += [ia.lo >> b_hi, ia.hi >> b_hi]
    else:
        candidates += [0 if ia.lo >= 0 else -1, 0 if ia.hi >= 0 else -1]
    return Interval(min(candidates), max(candidates))


def _interval_min(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    if a.hi is None:
        hi = b.hi
    elif b.hi is None:
        hi = a.hi
    else:
        hi = min(a.hi, b.hi)
    return Interval(lo, hi)


def _interval_max(a: Interval, b: Interval) -> Interval:
    if a.lo is None:
        lo = b.lo
    elif b.lo is None:
        lo = a.lo
    else:
        lo = max(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(lo, hi)


#: Bitwise/shift ops: every non-faulting evaluation yields an int, so
#: these may produce intervals even from ANY operands.
_INT_ONLY_OPS = {
    Op.AND: _interval_and,
    Op.OR: _interval_or_xor,
    Op.XOR: _interval_or_xor,
    Op.SHL: _interval_shl,
    Op.SHR: _interval_shr,
}

#: Arithmetic ops: well-defined on non-ints too (float math, string
#: concatenation), so both operands must be proven integral.
_ARITH_OPS = {
    Op.ADD: _interval_add,
    Op.SUB: _interval_sub,
    Op.MUL: _interval_mul,
    Op.MIN: _interval_min,
    Op.MAX: _interval_max,
}


class IntervalLattice:
    """Operations of the per-register interval environment."""

    @staticmethod
    def entry_state() -> Dict[str, Any]:
        """All registers unknown — sound for any calling context."""
        return {reg: ANY for reg in ALL_REGISTERS}

    @staticmethod
    def meet(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
        """Confluence = join (may-analysis over value ranges)."""
        return {reg: join_values(a[reg], b[reg]) for reg in a}

    @staticmethod
    def value_of(operand: Any, state: Dict[str, Any],
                 seeds: RangeSeeds) -> Any:
        """Abstract value of an operand under ``state``."""
        if is_register(operand):
            return state.get(operand, ANY)
        if isinstance(operand, bool) or isinstance(operand, int):
            return Interval(int(operand), int(operand))
        if isinstance(operand, tuple):
            kind = operand[0]
            if kind == "hdr":
                return seeds.header_field(operand[1], operand[2])
            if kind == "meta":
                return seeds.meta_key(operand[1])
            return ANY  # mem refs and resolve addresses.
        return ANY  # Floats, string literals, anything else.

    @staticmethod
    def evaluate(instruction: Instruction, state: Dict[str, Any],
                 seeds: RangeSeeds) -> Dict[str, Any]:
        """Push one instruction through a state (returns a new state)."""
        op = instruction.op
        args = instruction.args
        if op is Op.CALL:
            # The callee shares the register file and may write anything.
            return {reg: ANY for reg in state}
        if op is Op.RET and args:
            new = dict(state)
            new["r0"] = IntervalLattice.value_of(args[0], state, seeds)
            return new
        defs = instruction_defs(instruction)
        if not defs:
            return state
        (dst,) = defs
        new = dict(state)
        if op is Op.MOV:
            new[dst] = IntervalLattice.value_of(args[1], state, seeds)
        elif op in _ARITH_OPS:
            a = IntervalLattice.value_of(args[1], state, seeds)
            b = IntervalLattice.value_of(args[2], state, seeds)
            ia, ib = to_interval(a), to_interval(b)
            new[dst] = _ARITH_OPS[op](ia, ib) \
                if ia is not None and ib is not None else ANY
        elif op in _INT_ONLY_OPS:
            a = IntervalLattice.value_of(args[1], state, seeds)
            b = IntervalLattice.value_of(args[2], state, seeds)
            new[dst] = _INT_ONLY_OPS[op](a, b)
        elif op in (Op.HASH, Op.CRC):
            new[dst] = Interval(0, _HASH_MAX)
        elif op in (Op.LOAD, Op.LOADD):
            new[dst] = Interval(0, _WORD_MAX)
        elif op is Op.HLOAD:
            ref = args[1]
            new[dst] = seeds.header_field(ref[1], ref[2])
        elif op is Op.MLOAD:
            new[dst] = seeds.meta_key(args[1][1])
        else:
            # resolve (address tuples) and anything unforeseen.
            new[dst] = ANY
        return new


# ---------------------------------------------------------------------------
# Branch-edge refinement
# ---------------------------------------------------------------------------


def _refined(state: Dict[str, Any], updates: Dict[str, Interval]
             ) -> Dict[str, Any]:
    new = dict(state)
    new.update(updates)
    return new


def refine_branch(
    cfg: CFG,
    source: BasicBlock,
    target_bid: int,
    state: Dict[str, Any],
    seeds: RangeSeeds,
) -> Optional[Dict[str, Any]]:
    """Refine ``source``'s out-state along the edge to ``target_bid``.

    Returns None when the analysis proves the edge infeasible. Only
    operands already known integral (mapped to an :class:`Interval`)
    are ever refined: promoting an ANY value from an equality test
    would be unsound under Python's cross-type equality (``1.0 == 1``).
    """
    term = source.terminator
    if term is None or term.op not in BRANCH_OPS:
        return state
    labels = cfg.function.labels()
    target_index = labels.get(term.args[-1])
    taken = cfg.block_at.get(target_index) if target_index is not None \
        else None
    fallthrough = source.bid + 1 if source.bid + 1 < len(cfg.blocks) else None
    if taken == fallthrough:
        return state  # Both outcomes land here: nothing learned.
    if target_bid == taken:
        truth = True
    elif target_bid == fallthrough:
        truth = False
    else:
        return state

    a_op, b_op = term.args[0], term.args[1]
    a = IntervalLattice.value_of(a_op, state, seeds)
    b = IntervalLattice.value_of(b_op, state, seeds)
    ia, ib = to_interval(a), to_interval(b)
    op = term.op

    # Normalize to one of: eq / ne / lt (a < b) / ge (a >= b).
    if op is Op.BEQ:
        kind = "eq" if truth else "ne"
    elif op is Op.BNE:
        kind = "ne" if truth else "eq"
    elif op is Op.BLT:
        kind = "lt" if truth else "ge"
    else:  # BGE
        kind = "ge" if truth else "lt"

    updates: Dict[str, Interval] = {}

    def narrow_to(operand: Any, value: Optional[Interval], new: Optional[Interval]
                  ) -> bool:
        """Record a refinement; False when the edge became infeasible."""
        if new is None:
            return False
        if is_register(operand) and value is not None and new != value:
            updates[operand] = new
        return True

    if kind == "eq":
        if ia is not None and ib is not None:
            both = ia.meet(ib)
            if not narrow_to(a_op, ia, both) or not narrow_to(b_op, ib, both):
                return None
    elif kind == "ne":
        if ia is not None and ib is not None and ib.is_constant:
            if not narrow_to(a_op, ia, _shave(ia, ib.lo)):
                return None
        if ib is not None and ia is not None and ia.is_constant:
            if not narrow_to(b_op, ib, _shave(ib, ia.lo)):
                return None
    elif kind == "lt":
        if ia is not None and ib is not None:
            new_a = ia.meet(Interval(None, None if ib.hi is None
                                     else ib.hi - 1))
            new_b = ib.meet(Interval(None if ia.lo is None
                                     else ia.lo + 1, None))
            if not narrow_to(a_op, ia, new_a) or not narrow_to(b_op, ib, new_b):
                return None
    else:  # ge: a >= b
        if ia is not None and ib is not None:
            new_a = ia.meet(Interval(ib.lo, None))
            new_b = ib.meet(Interval(None, ia.hi))
            if not narrow_to(a_op, ia, new_a) or not narrow_to(b_op, ib, new_b):
                return None

    return _refined(state, updates) if updates else state


def _shave(iv: Interval, c: Optional[int]) -> Optional[Interval]:
    """Exclude a single known value from an interval's endpoints."""
    if c is None:
        return iv
    lo, hi = iv.lo, iv.hi
    if lo is not None and lo == c:
        lo = lo + 1
    if hi is not None and hi == c:
        hi = hi - 1
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


# ---------------------------------------------------------------------------
# The dataflow problem and its driver
# ---------------------------------------------------------------------------


class _IntervalProblem(DataflowProblem):
    direction = FORWARD
    widen_after = 3

    def __init__(self, entry_state: Dict[str, Any], seeds: RangeSeeds) -> None:
        self.entry_state = entry_state
        self.seeds = seeds

    def boundary(self, cfg: CFG, block: BasicBlock):
        return self.entry_state if block.bid == cfg.entry else None

    def meet(self, a, b):
        return IntervalLattice.meet(a, b)

    def transfer(self, cfg: CFG, block: BasicBlock, state):
        for _, instruction in block.instructions:
            state = IntervalLattice.evaluate(instruction, state, self.seeds)
        return state

    def widen(self, old, new):
        return {reg: widen_values(old[reg], new[reg]) for reg in old}

    def edge(self, cfg: CFG, source: BasicBlock, target_bid: int, state):
        return refine_branch(cfg, source, target_bid, state, self.seeds)


@dataclass
class IntervalStates:
    """Interval-analysis fixpoint for one function."""

    cfg: CFG
    result: DataflowResult
    seeds: RangeSeeds
    #: Body index -> state *before* that instruction (reachable only).
    instr_in: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def before(self, index: int) -> Optional[Dict[str, Any]]:
        return self.instr_in.get(index)

    def value_before(self, index: int, operand: Any) -> Any:
        """Abstract value of ``operand`` just before ``index`` (or ANY)."""
        state = self.instr_in.get(index)
        if state is None:
            return ANY
        return IntervalLattice.value_of(operand, state, self.seeds)

    def range_before(self, index: int, operand: Any) -> Optional[Interval]:
        """Proven interval of ``operand`` before ``index``, or None."""
        return to_interval(self.value_before(index, operand))


def interval_states(
    function: Function,
    entry_state: Optional[Dict[str, Any]] = None,
    cfg: Optional[CFG] = None,
    program: Optional[LambdaProgram] = None,
    seeds: Optional[RangeSeeds] = None,
    meta_ranges: Optional[Dict[str, Tuple[int, int]]] = None,
    trust_declared: bool = True,
) -> IntervalStates:
    """Interval analysis over one function.

    ``seeds`` (or ``program``, from which program-wide seeds are built)
    controls what ``hload``/``mload`` may be assumed to return; without
    either, a conservative function-local scan is used. ``entry_state``
    defaults to all-ANY, sound for any calling context.
    """
    cfg = cfg or build_cfg(function)
    if seeds is None:
        seeds = RangeSeeds.for_program(
            program, function=function, meta_ranges=meta_ranges,
            trust_declared=trust_declared,
        )
    entry = dict(entry_state) if entry_state is not None \
        else IntervalLattice.entry_state()
    problem = _IntervalProblem(entry, seeds)
    result = solve(cfg, problem)

    # Narrowing: re-apply the exact (unwidened) equations a fixed number
    # of rounds in reverse postorder. Starting from a post-fixpoint this
    # stays above the least fixpoint (sound) while pulling the widened
    # infinities back to the branch-established bounds.
    blocks = cfg.blocks
    order = cfg.reverse_postorder()
    for _ in range(_NARROW_ROUNDS):
        for bid in order:
            block = blocks[bid]
            acc = problem.boundary(cfg, block)
            for src in block.preds:
                src_state = result.out_states.get(src)
                if src_state is None:
                    continue
                src_state = problem.edge(cfg, blocks[src], bid, src_state)
                if src_state is None:
                    continue
                acc = src_state if acc is None else problem.meet(acc, src_state)
            if acc is None:
                continue
            result.in_states[bid] = acc
            result.out_states[bid] = problem.transfer(cfg, block, acc)

    instr_in: Dict[int, Dict[str, Any]] = {}
    for block in blocks:
        state = result.before(block.bid)
        if state is None:
            continue
        for index, instruction in block.instructions:
            instr_in[index] = state
            state = IntervalLattice.evaluate(instruction, state, seeds)
    return IntervalStates(cfg=cfg, result=result, seeds=seeds,
                          instr_in=instr_in)
