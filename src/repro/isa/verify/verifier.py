"""The top-level program verifier (the λ-NIC analogue of the eBPF
verifier): every analysis in this package, run over one program and
folded into a single :class:`~.report.VerifierReport`.

``verify_program`` is what the compiler's resource check, the serverless
admission layer, and the ``python -m repro.isa.verify`` lint CLI all
call. Error-grade findings make a program unloadable; warnings are
lint-grade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..instructions import Op
from ..program import LambdaProgram
from .analyses import (
    ALL_REGISTERS,
    ConstantStates,
    _reachable_from,
    constant_states,
    dead_stores,
    uninitialized_reads,
)
from .cfg import CFG, build_cfg
from .intervals import IntervalStates, interval_states
from .memcheck import check_memory, region_footprint
from .report import Finding, Severity, VerifierReport
from .wcet import estimate_wcet

#: Netronome Agilio CX instruction-store limit from the paper's testbed
#: (§6.1.2): 16 K instructions per core. Canonical here; the compiler's
#: resource check imports it.
MAX_INSTRUCTIONS_PER_CORE = 16 * 1024


@dataclass
class VerifyOptions:
    """Knobs for :func:`verify_program`."""

    #: Entry function; defaults to the program's declared entry.
    entry: Optional[str] = None
    #: Registers exempt from dead-store / uninitialized-read findings;
    #: defaults to the program's declared ``scratch_registers``.
    scratch: Optional[FrozenSet[str]] = None
    #: Registers assumed live after the entry function returns.
    #: ``ALL_REGISTERS`` is the safe default for a fragment that will be
    #: composed into larger firmware; a standalone whole program (whose
    #: exits all end the machine) is unaffected by this value.
    entry_exit_live: FrozenSet[str] = ALL_REGISTERS
    check_uninitialized: bool = True
    check_dead_stores: bool = True
    check_memory: bool = True
    check_wcet: bool = True
    #: Run the interval (value-range) analysis and let memcheck / WCET
    #: consume it. Off, the verifier reproduces its pre-interval
    #: behavior exactly — the admission differential guard compares
    #: the two.
    use_intervals: bool = True
    #: Extra caller-supplied metadata-key ranges seeding the interval
    #: analysis (key -> inclusive (lo, hi)).
    meta_ranges: Optional[Dict[str, Tuple[int, int]]] = None
    max_instructions: int = MAX_INSTRUCTIONS_PER_CORE


def _program_scratch(program: LambdaProgram) -> FrozenSet[str]:
    return frozenset(getattr(program, "scratch_registers", ()) or ())


def verify_program(
    program: LambdaProgram,
    options: Optional[VerifyOptions] = None,
) -> VerifierReport:
    """Statically verify ``program`` and return the full report."""
    options = options or VerifyOptions()
    entry = options.entry or program.entry
    scratch = options.scratch if options.scratch is not None \
        else _program_scratch(program)

    report = VerifierReport(
        program=program.name,
        instruction_count=program.instruction_count,
        code_bytes=program.code_bytes,
        data_bytes=program.data_bytes,
        region_footprint=region_footprint(program),
    )
    findings = report.findings

    # 1. Structural validation (undefined calls/labels/objects). The
    # remaining analyses are written to tolerate dangling references,
    # so verification continues for better diagnostics.
    try:
        program.validate()
    except ValueError as exc:
        findings.append(Finding(
            severity=Severity.ERROR,
            code="invalid-program",
            message=str(exc),
        ))

    # 2. Instruction store.
    if report.instruction_count > options.max_instructions:
        findings.append(Finding(
            severity=Severity.ERROR,
            code="instr-overflow",
            message=(
                f"{report.instruction_count} instructions exceed the "
                f"core's {options.max_instructions}-instruction store"
            ),
        ))

    cfgs: Dict[str, CFG] = {
        name: build_cfg(function)
        for name, function in program.functions.items()
    }
    consts: Dict[str, ConstantStates] = {
        name: constant_states(function, cfg=cfgs[name])
        for name, function in program.functions.items()
    }
    ranges: Optional[Dict[str, IntervalStates]] = None
    if options.use_intervals:
        ranges = {
            name: interval_states(function, cfg=cfgs[name], program=program,
                                  meta_ranges=options.meta_ranges)
            for name, function in program.functions.items()
        }
    has_entry = entry in program.functions

    # 3. Unreachable functions and blocks.
    reachable_functions = _reachable_from(program, entry) if has_entry \
        else set(program.functions)
    for name, cfg in cfgs.items():
        if name not in reachable_functions:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="unreachable-function",
                message=f"function {name!r} is never called from "
                        f"{entry!r}",
                function=name,
            ))
            continue
        live_blocks = cfg.reachable()
        for block in cfg.blocks:
            if block.bid in live_blocks or not block.instructions:
                continue
            index, instruction = block.instructions[0]
            findings.append(Finding(
                severity=Severity.WARNING,
                code="unreachable",
                message=f"{block.end - index} instruction(s) can never "
                        "execute",
                function=name,
                index=index,
                instruction=repr(instruction),
            ))

    # 4. Uninitialized register reads (error-grade: the simulator
    # zero-fills, the real NPU does not).
    if options.check_uninitialized and has_entry:
        for name, index, reg in uninitialized_reads(
            program, entry=entry, scratch=scratch
        ):
            findings.append(Finding(
                severity=Severity.ERROR,
                code="uninit-read",
                message=f"register {reg} may be read before it is "
                        "written",
                function=name,
                index=index,
                instruction=repr(program.functions[name].body[index]),
            ))

    # 5. Dead stores (lint-grade; the DSE pass can delete the pure ones).
    if options.check_dead_stores and has_entry:
        for name, index, reg in dead_stores(
            program, entry=entry, entry_exit_live=options.entry_exit_live,
            scratch=scratch,
        ):
            findings.append(Finding(
                severity=Severity.WARNING,
                code="dead-store",
                message=f"value written to {reg} is never read",
                function=name,
                index=index,
                instruction=repr(program.functions[name].body[index]),
            ))

    # 6. Memory bounds / isolation / capacity.
    if options.check_memory:
        findings.extend(check_memory(program, consts, ranges,
                                     use_intervals=options.use_intervals))

    # 7. WCET and loop bounds.
    if options.check_wcet and has_entry:
        wcet = estimate_wcet(program, entry=entry, consts=consts,
                             ranges=ranges,
                             use_intervals=options.use_intervals)
        findings.extend(wcet.findings)
        report.wcet_cycles = wcet.total_cycles
        report.function_wcet = dict(wcet.function_cycles)
        report.wcet_method = dict(wcet.function_method)
        for name, loops in wcet.loops.items():
            for loop in loops:
                if loop.bound is None:
                    continue  # Reported as an unbounded-loop error.
                provenance = f"counter {loop.counter}"
                if loop.bound_source:
                    provenance += f", via {loop.bound_source}"
                if loop.body_trips is not None:
                    provenance += f", body <= {loop.body_trips} trips"
                findings.append(Finding(
                    severity=Severity.INFO,
                    code="loop-bound",
                    message=(
                        f"loop bounded at {loop.bound} iterations "
                        f"({provenance})"
                    ),
                    function=name,
                    index=loop.exit_index,
                ))

    # 8. Intrinsics without a static cost model: advisory even when the
    # WCET pass is off (which would otherwise be the only thing that
    # notices, as a warning on its own path).
    from ..interpreter import intrinsic_wcet

    for name, function in program.functions.items():
        for index, instruction in enumerate(function.body):
            if instruction.op is not Op.INTRINSIC:
                continue
            if intrinsic_wcet(instruction.args[0]) is None:
                findings.append(Finding(
                    severity=Severity.INFO,
                    code="missing-wcet-model",
                    message=(
                        f"intrinsic {instruction.args[0]!r} declares no "
                        "WCET model (register one with "
                        "register_intrinsic(..., wcet=...))"
                    ),
                    function=name,
                    index=index,
                    instruction=repr(instruction),
                ))

    report.sort()
    return report
