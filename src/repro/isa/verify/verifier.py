"""The top-level program verifier (the λ-NIC analogue of the eBPF
verifier): every analysis in this package, run over one program and
folded into a single :class:`~.report.VerifierReport`.

``verify_program`` is what the compiler's resource check, the serverless
admission layer, and the ``python -m repro.isa.verify`` lint CLI all
call. Error-grade findings make a program unloadable; warnings are
lint-grade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..program import LambdaProgram
from .analyses import (
    ALL_REGISTERS,
    ConstantStates,
    _reachable_from,
    constant_states,
    dead_stores,
    uninitialized_reads,
)
from .cfg import CFG, build_cfg
from .memcheck import check_memory, region_footprint
from .report import Finding, Severity, VerifierReport
from .wcet import estimate_wcet

#: Netronome Agilio CX instruction-store limit from the paper's testbed
#: (§6.1.2): 16 K instructions per core. Canonical here; the compiler's
#: resource check imports it.
MAX_INSTRUCTIONS_PER_CORE = 16 * 1024


@dataclass
class VerifyOptions:
    """Knobs for :func:`verify_program`."""

    #: Entry function; defaults to the program's declared entry.
    entry: Optional[str] = None
    #: Registers exempt from dead-store / uninitialized-read findings;
    #: defaults to the program's declared ``scratch_registers``.
    scratch: Optional[FrozenSet[str]] = None
    #: Registers assumed live after the entry function returns.
    #: ``ALL_REGISTERS`` is the safe default for a fragment that will be
    #: composed into larger firmware; a standalone whole program (whose
    #: exits all end the machine) is unaffected by this value.
    entry_exit_live: FrozenSet[str] = ALL_REGISTERS
    check_uninitialized: bool = True
    check_dead_stores: bool = True
    check_memory: bool = True
    check_wcet: bool = True
    max_instructions: int = MAX_INSTRUCTIONS_PER_CORE


def _program_scratch(program: LambdaProgram) -> FrozenSet[str]:
    return frozenset(getattr(program, "scratch_registers", ()) or ())


def verify_program(
    program: LambdaProgram,
    options: Optional[VerifyOptions] = None,
) -> VerifierReport:
    """Statically verify ``program`` and return the full report."""
    options = options or VerifyOptions()
    entry = options.entry or program.entry
    scratch = options.scratch if options.scratch is not None \
        else _program_scratch(program)

    report = VerifierReport(
        program=program.name,
        instruction_count=program.instruction_count,
        code_bytes=program.code_bytes,
        data_bytes=program.data_bytes,
        region_footprint=region_footprint(program),
    )
    findings = report.findings

    # 1. Structural validation (undefined calls/labels/objects). The
    # remaining analyses are written to tolerate dangling references,
    # so verification continues for better diagnostics.
    try:
        program.validate()
    except ValueError as exc:
        findings.append(Finding(
            severity=Severity.ERROR,
            code="invalid-program",
            message=str(exc),
        ))

    # 2. Instruction store.
    if report.instruction_count > options.max_instructions:
        findings.append(Finding(
            severity=Severity.ERROR,
            code="instr-overflow",
            message=(
                f"{report.instruction_count} instructions exceed the "
                f"core's {options.max_instructions}-instruction store"
            ),
        ))

    cfgs: Dict[str, CFG] = {
        name: build_cfg(function)
        for name, function in program.functions.items()
    }
    consts: Dict[str, ConstantStates] = {
        name: constant_states(function, cfg=cfgs[name])
        for name, function in program.functions.items()
    }
    has_entry = entry in program.functions

    # 3. Unreachable functions and blocks.
    reachable_functions = _reachable_from(program, entry) if has_entry \
        else set(program.functions)
    for name, cfg in cfgs.items():
        if name not in reachable_functions:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="unreachable-function",
                message=f"function {name!r} is never called from "
                        f"{entry!r}",
                function=name,
            ))
            continue
        live_blocks = cfg.reachable()
        for block in cfg.blocks:
            if block.bid in live_blocks or not block.instructions:
                continue
            index, instruction = block.instructions[0]
            findings.append(Finding(
                severity=Severity.WARNING,
                code="unreachable",
                message=f"{block.end - index} instruction(s) can never "
                        "execute",
                function=name,
                index=index,
                instruction=repr(instruction),
            ))

    # 4. Uninitialized register reads (error-grade: the simulator
    # zero-fills, the real NPU does not).
    if options.check_uninitialized and has_entry:
        for name, index, reg in uninitialized_reads(
            program, entry=entry, scratch=scratch
        ):
            findings.append(Finding(
                severity=Severity.ERROR,
                code="uninit-read",
                message=f"register {reg} may be read before it is "
                        "written",
                function=name,
                index=index,
                instruction=repr(program.functions[name].body[index]),
            ))

    # 5. Dead stores (lint-grade; the DSE pass can delete the pure ones).
    if options.check_dead_stores and has_entry:
        for name, index, reg in dead_stores(
            program, entry=entry, entry_exit_live=options.entry_exit_live,
            scratch=scratch,
        ):
            findings.append(Finding(
                severity=Severity.WARNING,
                code="dead-store",
                message=f"value written to {reg} is never read",
                function=name,
                index=index,
                instruction=repr(program.functions[name].body[index]),
            ))

    # 6. Memory bounds / isolation / capacity.
    if options.check_memory:
        findings.extend(check_memory(program, consts))

    # 7. WCET and loop bounds.
    if options.check_wcet and has_entry:
        wcet = estimate_wcet(program, entry=entry, consts=consts)
        findings.extend(wcet.findings)
        report.wcet_cycles = wcet.total_cycles
        report.function_wcet = dict(wcet.function_cycles)
        for name, loops in wcet.loops.items():
            for loop in loops:
                if loop.bound is None:
                    continue  # Reported as an unbounded-loop error.
                findings.append(Finding(
                    severity=Severity.INFO,
                    code="loop-bound",
                    message=(
                        f"loop bounded at {loop.bound} iterations "
                        f"(counter {loop.counter})"
                    ),
                    function=name,
                    index=loop.exit_index,
                ))

    report.sort()
    return report
