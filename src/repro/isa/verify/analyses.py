"""Concrete dataflow analyses over the lambda IR.

All analyses mirror the interpreter's exact semantics
(:mod:`repro.isa.interpreter`):

* the 16-register file is **shared across calls** (no save/restore), so
  liveness and initialization are interprocedural — callers pass
  arguments in registers and callees leak writes back;
* ``ret value`` also writes ``r0``;
* packet terminators (``forward``/``drop``/``to_host``) and ``halt``
  end the whole execution, so nothing is live after them;
* ``load``'s address-register operand is never read by the interpreter
  but is still treated as a use, so a ``resolve`` feeding it is not a
  dead store (the pair is one logical access).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..instructions import Instruction, Op, is_mem_ref, is_register
from ..interpreter import _ALU_OPS
from ..program import Function, LambdaProgram
from .cfg import BRANCH_OPS, CFG, BasicBlock, build_cfg
from .dataflow import BACKWARD, DataflowProblem, DataflowResult, FORWARD, solve

#: The NPU register file.
ALL_REGISTERS: FrozenSet[str] = frozenset(f"r{i}" for i in range(16))

#: Opcodes whose first operand is a register destination.
_DEF_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
    Op.MOV, Op.MIN, Op.MAX,
    Op.RESOLVE, Op.LOAD, Op.LOADD, Op.HLOAD, Op.MLOAD, Op.HASH, Op.CRC,
})

#: Opcodes whose operands are names (labels / functions), never registers.
_NAME_OPS = frozenset({Op.JMP, Op.CALL, Op.LABEL})

#: Register-writing opcodes with no side effects beyond the write — the
#: candidates dead-store elimination may delete outright.
PURE_DEF_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
    Op.MOV, Op.MIN, Op.MAX, Op.RESOLVE,
})


def _operand_registers(operand: Any) -> Iterator[str]:
    if is_register(operand):
        yield operand
    elif is_mem_ref(operand):
        yield from _operand_registers(operand[2])


def instruction_defs(instruction: Instruction) -> FrozenSet[str]:
    """Registers this instruction writes (CALL handled by summaries)."""
    op = instruction.op
    if op in _DEF_OPS and instruction.args and is_register(instruction.args[0]):
        return frozenset((instruction.args[0],))
    if op is Op.RET and instruction.args:
        return frozenset(("r0",))
    return frozenset()


def instruction_uses(instruction: Instruction) -> FrozenSet[str]:
    """Registers this instruction reads (CALL handled by summaries)."""
    op = instruction.op
    if op in _NAME_OPS:
        return frozenset()
    regs: List[str] = []
    for position, arg in enumerate(instruction.args):
        if position == 0 and op in _DEF_OPS:
            continue  # The destination slot.
        if op in BRANCH_OPS and position == len(instruction.args) - 1:
            continue  # The label operand.
        regs.extend(_operand_registers(arg))
    return frozenset(regs)


# ---------------------------------------------------------------------------
# Interprocedural liveness
# ---------------------------------------------------------------------------


class _LivenessProblem(DataflowProblem):
    """Backward may-live analysis for one function.

    ``exit_live`` is the caller-side live set after this function
    returns; machine-terminated exit blocks contribute nothing (the
    register file dies with the packet verdict).
    """

    direction = BACKWARD

    def __init__(self, exit_live: FrozenSet[str],
                 call_uses: Dict[str, FrozenSet[str]]) -> None:
        self.exit_live = exit_live
        self.call_uses = call_uses
        self._block_summary: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]] = {}

    def boundary(self, cfg: CFG, block: BasicBlock) -> Optional[FrozenSet[str]]:
        if not block.is_exit:
            return None
        if block.ends_machine:
            return frozenset()
        return self.exit_live

    def meet(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def _summary(self, block: BasicBlock) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        cached = self._block_summary.get(block.bid)
        if cached is not None:
            return cached
        gen: FrozenSet[str] = frozenset()
        kill: FrozenSet[str] = frozenset()
        for _, instruction in reversed(block.instructions):
            g, k = _liveness_effect(instruction, self.call_uses)
            gen = g | (gen - k)
            kill = kill | k
        self._block_summary[block.bid] = (gen, kill)
        return gen, kill

    def transfer(self, cfg: CFG, block: BasicBlock,
                 live_out: FrozenSet[str]) -> FrozenSet[str]:
        gen, kill = self._summary(block)
        return gen | (live_out - kill)


def _liveness_effect(
    instruction: Instruction, call_uses: Dict[str, FrozenSet[str]]
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(gen, kill) of one instruction for backward liveness."""
    if instruction.op is Op.CALL:
        # The callee may read its summary registers; it may also write
        # registers, but killing would need a must-write guarantee, so
        # be conservative and kill nothing.
        return call_uses.get(instruction.args[0], ALL_REGISTERS), frozenset()
    return instruction_uses(instruction), instruction_defs(instruction)


class InterproceduralLiveness:
    """Whole-program liveness over the shared register file.

    ``entry_exit_live`` is the live set assumed after the entry function
    returns. The default ``ALL_REGISTERS`` is the safe assumption for a
    program fragment that will be composed into larger firmware (its
    caller may read anything); pass ``frozenset()`` for a standalone
    whole program.
    """

    def __init__(
        self,
        program: LambdaProgram,
        entry: Optional[str] = None,
        entry_exit_live: FrozenSet[str] = ALL_REGISTERS,
    ) -> None:
        self.program = program
        self.entry = entry or program.entry
        self.entry_exit_live = entry_exit_live
        self.cfgs: Dict[str, CFG] = {
            name: build_cfg(function)
            for name, function in program.functions.items()
        }
        #: Registers a call to each function may read before writing.
        self.uses_summary: Dict[str, FrozenSet[str]] = {}
        #: Caller-side live set after each function returns.
        self.exit_live: Dict[str, FrozenSet[str]] = {}
        self._results: Dict[str, DataflowResult] = {}
        self._live_maps: Dict[str, Dict[int, FrozenSet[str]]] = {}
        self._compute()

    # -- fixpoints ---------------------------------------------------------

    def _solve_function(self, name: str,
                        exit_live: FrozenSet[str]) -> DataflowResult:
        problem = _LivenessProblem(exit_live, self.uses_summary)
        return solve(self.cfgs[name], problem)

    def _compute(self) -> None:
        names = list(self.program.functions)
        # Phase 1: may-use summaries (live-in at entry with empty exit),
        # least fixpoint from below.
        self.uses_summary = {name: frozenset() for name in names}
        changed = True
        while changed:
            changed = False
            for name in names:
                result = self._solve_function(name, frozenset())
                live_in = result.before(self.cfgs[name].entry) or frozenset()
                if live_in != self.uses_summary[name]:
                    self.uses_summary[name] = live_in
                    changed = True

        # Phase 2: exit-live sets, least fixpoint from below; the entry
        # function's comes from the caller assumption.
        self.exit_live = {name: frozenset() for name in names}
        self.exit_live[self.entry] = self.entry_exit_live
        changed = True
        while changed:
            changed = False
            for name in names:
                result = self._solve_function(name, self.exit_live[name])
                for callee, live_after in self._call_site_live(name, result):
                    if callee not in self.exit_live:
                        continue
                    merged = self.exit_live[callee] | live_after
                    if merged != self.exit_live[callee]:
                        self.exit_live[callee] = merged
                        changed = True

        for name in names:
            self._results[name] = self._solve_function(
                name, self.exit_live[name]
            )

    def _call_site_live(
        self, name: str, result: DataflowResult
    ) -> Iterator[Tuple[str, FrozenSet[str]]]:
        """(callee, live-after-call) for each call site in ``name``."""
        cfg = self.cfgs[name]
        for block in cfg.blocks:
            live = result.after(block.bid)
            if live is None:
                continue  # Unreachable block.
            for index, instruction in reversed(block.instructions):
                if instruction.op is Op.CALL:
                    yield instruction.args[0], live
                gen, kill = _liveness_effect(instruction, self.uses_summary)
                live = gen | (live - kill)

    # -- queries -----------------------------------------------------------

    def result(self, name: str) -> DataflowResult:
        return self._results[name]

    def live_map(self, name: str) -> Dict[int, FrozenSet[str]]:
        """Body index -> registers live *after* that instruction.

        Indices of unreachable instructions are absent.
        """
        cached = self._live_maps.get(name)
        if cached is not None:
            return cached
        cfg = self.cfgs[name]
        result = self._results[name]
        live_after: Dict[int, FrozenSet[str]] = {}
        for block in cfg.blocks:
            live = result.after(block.bid)
            if live is None:
                continue
            for index, instruction in reversed(block.instructions):
                live_after[index] = live
                gen, kill = _liveness_effect(instruction, self.uses_summary)
                live = gen | (live - kill)
        self._live_maps[name] = live_after
        return live_after

    def live_after(self, name: str, index: int) -> FrozenSet[str]:
        return self.live_map(name).get(index, ALL_REGISTERS)


def dead_stores(
    program: LambdaProgram,
    liveness: Optional[InterproceduralLiveness] = None,
    entry: Optional[str] = None,
    entry_exit_live: FrozenSet[str] = ALL_REGISTERS,
    scratch: FrozenSet[str] = frozenset(),
    removable_only: bool = False,
) -> List[Tuple[str, int, str]]:
    """``(function, index, register)`` for defs whose value is never read.

    ``scratch`` registers (declared via ``LambdaProgram.scratch_registers``)
    are exempt — they hold values the author has promised nobody reads.
    With ``removable_only`` the list is restricted to :data:`PURE_DEF_OPS`
    (what dead-store elimination may actually delete); otherwise all
    register-writing ops are linted, including loads whose result is
    unused.
    """
    if liveness is None:
        liveness = InterproceduralLiveness(
            program, entry=entry, entry_exit_live=entry_exit_live
        )
    found: List[Tuple[str, int, str]] = []
    for name, function in program.functions.items():
        live_after = liveness.live_map(name)
        for index, instruction in enumerate(function.body):
            if removable_only:
                if instruction.op not in PURE_DEF_OPS:
                    continue
            elif instruction.op not in _DEF_OPS:
                continue
            defs = instruction_defs(instruction)
            if not defs:
                continue
            live = live_after.get(index)
            if live is None:
                continue  # Unreachable; reported separately.
            for reg in sorted(defs):
                if reg not in live and reg not in scratch:
                    found.append((name, index, reg))
    return found


# ---------------------------------------------------------------------------
# Definite initialization (uninitialized-read detection)
# ---------------------------------------------------------------------------


class _InitProblem(DataflowProblem):
    """Forward must-initialized analysis (meet = intersection)."""

    direction = FORWARD

    def __init__(self, entry_init: FrozenSet[str],
                 writes_summary: Dict[str, FrozenSet[str]]) -> None:
        self.entry_init = entry_init
        self.writes_summary = writes_summary

    def boundary(self, cfg: CFG, block: BasicBlock) -> Optional[FrozenSet[str]]:
        return self.entry_init if block.bid == cfg.entry else None

    def meet(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a & b

    def transfer(self, cfg: CFG, block: BasicBlock,
                 init: FrozenSet[str]) -> FrozenSet[str]:
        for _, instruction in block.instructions:
            init = init | _init_effect(instruction, self.writes_summary)
        return init


def _init_effect(instruction: Instruction,
                 writes_summary: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
    if instruction.op is Op.CALL:
        return writes_summary.get(instruction.args[0], frozenset())
    return instruction_defs(instruction)


def _must_write_summaries(
    program: LambdaProgram, cfgs: Dict[str, CFG]
) -> Dict[str, FrozenSet[str]]:
    """Registers each function writes on *every* returning path.

    Machine-terminated paths never return to the caller, so they do not
    constrain the summary; a function that always ends the machine
    trivially "writes everything" as far as its caller's continuation
    is concerned. Greatest fixpoint, iterated downward.
    """
    summaries: Dict[str, FrozenSet[str]] = {
        name: ALL_REGISTERS for name in program.functions
    }
    changed = True
    while changed:
        changed = False
        for name, cfg in cfgs.items():
            problem = _InitProblem(frozenset(), summaries)
            result = solve(cfg, problem)
            returning: List[FrozenSet[str]] = []
            for block in cfg.exit_blocks():
                state = result.after(block.bid)
                if state is None or block.ends_machine:
                    continue
                returning.append(state)
            summary = ALL_REGISTERS if not returning else \
                frozenset.intersection(*returning)
            if summary != summaries[name]:
                summaries[name] = summary
                changed = True
    return summaries


def uninitialized_reads(
    program: LambdaProgram,
    entry: Optional[str] = None,
    scratch: FrozenSet[str] = frozenset(),
) -> List[Tuple[str, int, str]]:
    """``(function, index, register)`` reads of never-written registers.

    The simulator's :class:`~repro.isa.interpreter.Machine` zero-fills
    the register file, so these reads are deterministic at runtime — but
    relying on implicit zeros is exactly the class of bug an
    eBPF-grade verifier rejects (on the real NPU the register file holds
    whatever the previous packet left there). Helper functions inherit
    the intersection of their call sites' initialized sets.
    """
    entry = entry or program.entry
    cfgs = {
        name: build_cfg(function)
        for name, function in program.functions.items()
    }
    writes = _must_write_summaries(program, cfgs)

    # Interprocedural entry states: greatest fixpoint, iterated downward
    # from "everything initialized" for helpers; the program entry
    # starts cold.
    entry_init: Dict[str, FrozenSet[str]] = {
        name: ALL_REGISTERS for name in program.functions
    }
    if entry in entry_init:
        entry_init[entry] = frozenset()
    reachable = _reachable_from(program, entry)
    changed = True
    while changed:
        changed = False
        for name in reachable:
            cfg = cfgs.get(name)
            if cfg is None:
                continue
            problem = _InitProblem(entry_init[name], writes)
            result = solve(cfg, problem)
            for callee, init_at_call in _call_site_init(cfg, result, writes):
                if callee not in entry_init or callee == entry:
                    continue
                narrowed = entry_init[callee] & init_at_call
                if narrowed != entry_init[callee]:
                    entry_init[callee] = narrowed
                    changed = True

    found: List[Tuple[str, int, str]] = []
    for name in sorted(reachable):
        cfg = cfgs.get(name)
        if cfg is None:
            continue
        problem = _InitProblem(entry_init[name], writes)
        result = solve(cfg, problem)
        for block in cfg.blocks:
            init = result.before(block.bid)
            if init is None:
                continue
            for index, instruction in block.instructions:
                for reg in sorted(instruction_uses(instruction)):
                    if reg not in init and reg not in scratch:
                        found.append((name, index, reg))
                init = init | _init_effect(instruction, writes)
    return found


def _call_site_init(
    cfg: CFG, result: DataflowResult, writes: Dict[str, FrozenSet[str]]
) -> Iterator[Tuple[str, FrozenSet[str]]]:
    for block in cfg.blocks:
        init = result.before(block.bid)
        if init is None:
            continue
        for _, instruction in block.instructions:
            if instruction.op is Op.CALL:
                yield instruction.args[0], init
            init = init | _init_effect(instruction, writes)


def _reachable_from(program: LambdaProgram, entry: str) -> Set[str]:
    seen: Set[str] = set()
    stack = [entry]
    while stack:
        name = stack.pop()
        if name in seen or name not in program.functions:
            continue
        seen.add(name)
        stack.extend(program.functions[name].called_functions())
    return seen


def may_write_registers(program: LambdaProgram, name: str) -> FrozenSet[str]:
    """Registers a call to ``name`` may write (transitively)."""
    written: Set[str] = set()
    seen: Set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen or current not in program.functions:
            if current not in program.functions:
                return ALL_REGISTERS  # Unknown callee: assume anything.
            continue
        seen.add(current)
        function = program.functions[current]
        for instruction in function.body:
            written |= instruction_defs(instruction)
            if instruction.op is Op.CALL:
                stack.append(instruction.args[0])
    return frozenset(written)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class _ReachingDefsProblem(DataflowProblem):
    """Forward may-reach analysis over ``(register, body_index)`` defs.

    ``index`` -1 denotes the definition "from outside" (function entry);
    a CALL is modelled as a fresh definition of every register (the
    callee may write any of them).
    """

    direction = FORWARD

    def boundary(self, cfg: CFG, block: BasicBlock):
        if block.bid != cfg.entry:
            return None
        return frozenset((reg, -1) for reg in ALL_REGISTERS)

    def meet(self, a, b):
        return a | b

    def transfer(self, cfg: CFG, block: BasicBlock, reaching):
        for index, instruction in block.instructions:
            defs = instruction_defs(instruction)
            if instruction.op is Op.CALL:
                defs = ALL_REGISTERS
            if not defs:
                continue
            reaching = frozenset(
                item for item in reaching if item[0] not in defs
            ) | frozenset((reg, index) for reg in defs)
        return reaching


def reaching_definitions(function: Function,
                         cfg: Optional[CFG] = None) -> DataflowResult:
    """Solve reaching definitions; states are ``{(register, def_index)}``."""
    cfg = cfg or build_cfg(function)
    return solve(cfg, _ReachingDefsProblem())


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------


class _NotAConstant:
    """Lattice bottom for constant propagation."""

    _instance: Optional["_NotAConstant"] = None

    def __new__(cls) -> "_NotAConstant":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NAC"


#: "Not a constant": the value varies at runtime.
NAC = _NotAConstant()


class ConstLattice:
    """Operations of the constant-propagation lattice.

    A state maps every register to a concrete value (int/float/str —
    whatever :meth:`Machine.read` can produce for pure operands) or
    :data:`NAC`.
    """

    @staticmethod
    def entry_state() -> Dict[str, Any]:
        """All registers unknown — sound for any calling context."""
        return {reg: NAC for reg in ALL_REGISTERS}

    @staticmethod
    def meet(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
        return {
            reg: a[reg] if a[reg] == b[reg] else NAC for reg in a
        }

    @staticmethod
    def value_of(operand: Any, state: Dict[str, Any]) -> Any:
        """The statically-known value of an operand, or NAC."""
        if is_register(operand):
            return state.get(operand, NAC)
        if isinstance(operand, (int, float)):
            return operand
        if isinstance(operand, str):
            return operand  # Non-register strings read as literals.
        return NAC  # hdr/meta/mem references are runtime-dependent.

    @staticmethod
    def evaluate(instruction: Instruction,
                 state: Dict[str, Any]) -> Dict[str, Any]:
        """Push one instruction through a state (returns a new state)."""
        op = instruction.op
        args = instruction.args
        if op is Op.CALL:
            # The callee shares the register file and may write anything.
            return {reg: NAC for reg in state}
        if op is Op.RET and args:
            value = ConstLattice.value_of(args[0], state)
            new = dict(state)
            new["r0"] = value
            return new
        defs = instruction_defs(instruction)
        if not defs:
            return state
        (dst,) = defs
        new = dict(state)
        if op is Op.MOV:
            new[dst] = ConstLattice.value_of(args[1], state)
        elif op in _ALU_OPS:
            a = ConstLattice.value_of(args[1], state)
            b = ConstLattice.value_of(args[2], state)
            if a is NAC or b is NAC:
                new[dst] = NAC
            else:
                try:
                    new[dst] = _ALU_OPS[op](a, b)
                except Exception:
                    new[dst] = NAC  # Would fault at runtime; don't fold.
        else:
            # Loads, hash/crc, resolve: value unknown statically.
            new[dst] = NAC
        return new


class _ConstProblem(DataflowProblem):
    direction = FORWARD

    def __init__(self, entry_state: Dict[str, Any]) -> None:
        self.entry_state = entry_state

    def boundary(self, cfg: CFG, block: BasicBlock):
        return self.entry_state if block.bid == cfg.entry else None

    def meet(self, a, b):
        return ConstLattice.meet(a, b)

    def transfer(self, cfg: CFG, block: BasicBlock, state):
        for _, instruction in block.instructions:
            state = ConstLattice.evaluate(instruction, state)
        return state


@dataclass
class ConstantStates:
    """Constant-propagation fixpoint for one function."""

    cfg: CFG
    result: DataflowResult
    #: Body index -> state *before* that instruction (reachable only).
    instr_in: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def before(self, index: int) -> Optional[Dict[str, Any]]:
        return self.instr_in.get(index)

    def value_before(self, index: int, operand: Any) -> Any:
        """Known value of ``operand`` just before ``index``, or NAC."""
        state = self.instr_in.get(index)
        if state is None:
            return NAC
        return ConstLattice.value_of(operand, state)

    def const_before(self, index: int, operand: Any) -> Optional[Any]:
        """Like :meth:`value_before` but returns None instead of NAC."""
        value = self.value_before(index, operand)
        return None if value is NAC else value


def constant_states(
    function: Function,
    entry_state: Optional[Dict[str, Any]] = None,
    cfg: Optional[CFG] = None,
) -> ConstantStates:
    """Constant propagation over one function.

    ``entry_state`` defaults to all-NAC, which is sound for any calling
    context (lambda entries are CALLed from dispatch with whatever the
    parser left in the registers).
    """
    cfg = cfg or build_cfg(function)
    entry = dict(entry_state) if entry_state is not None \
        else ConstLattice.entry_state()
    result = solve(cfg, _ConstProblem(entry))
    instr_in: Dict[int, Dict[str, Any]] = {}
    for block in cfg.blocks:
        state = result.before(block.bid)
        if state is None:
            continue
        for index, instruction in block.instructions:
            instr_in[index] = state
            state = ConstLattice.evaluate(instruction, state)
    return ConstantStates(cfg=cfg, result=result, instr_in=instr_in)
