"""Static verification of lambda programs (eBPF-verifier style).

λ-NIC installs untrusted Micro-C lambdas onto shared NPU cores, so the
runtime must prove — *before* flashing firmware — that a lambda fits the
instruction store, respects memory isolation, and terminates within the
interactive SLO. This package provides that proof layer:

* :mod:`.cfg` — per-function control-flow graphs (basic blocks, edges
  from branches/jumps/fallthrough, loop detection);
* :mod:`.dataflow` — a generic worklist fixpoint framework;
* :mod:`.analyses` — reaching definitions, liveness, constant
  propagation, initialized-register tracking (all interprocedural over
  the shared 16-register file);
* :mod:`.intervals` — value-range (interval) abstract interpretation
  with widening/narrowing, seeded from declared packet-format field
  ranges, proving e.g. ``hash & (SIZE-1)`` offsets in-bounds;
* :mod:`.memcheck` — bounds and access-mode checks against declared
  :class:`~repro.isa.program.MemoryObject` regions, upgraded by the
  interval analysis to proven-safe / definitely-out-of-bounds;
* :mod:`.wcet` — loop-bound inference and worst-case cycle estimation
  using the interpreter's own per-op/region cost model, so static
  bounds are directly comparable to dynamic cycle counts;
* :mod:`.verifier` — the :func:`verify_program` entry point producing a
  :class:`~repro.isa.verify.report.VerifierReport`.

Run ``python -m repro.isa.verify <file.asm>`` for the standalone lint
CLI (see :mod:`.__main__`).
"""

from .analyses import (
    ALL_REGISTERS,
    ConstLattice,
    ConstantStates,
    InterproceduralLiveness,
    NAC,
    PURE_DEF_OPS,
    constant_states,
    dead_stores,
    instruction_defs,
    instruction_uses,
    may_write_registers,
    reaching_definitions,
    uninitialized_reads,
)
from .cfg import (
    BRANCH_OPS,
    CFG,
    MACHINE_TERMINATOR_OPS,
    TERMINATOR_OPS,
    BasicBlock,
    build_cfg,
)
from .dataflow import DataflowProblem, DataflowResult, FixpointError, solve
from .intervals import (
    ANY,
    Interval,
    IntervalLattice,
    IntervalStates,
    RangeSeeds,
    interval_states,
    refine_branch,
)
from .memcheck import check_memory, region_footprint
from .report import Finding, Severity, VerifierReport
from .verifier import (
    MAX_INSTRUCTIONS_PER_CORE,
    VerifyOptions,
    verify_program,
)
from .wcet import LoopInfo, WcetResult, estimate_wcet, find_loops

__all__ = [
    "ALL_REGISTERS",
    "ANY",
    "BRANCH_OPS",
    "BasicBlock",
    "CFG",
    "ConstLattice",
    "ConstantStates",
    "DataflowProblem",
    "DataflowResult",
    "Finding",
    "FixpointError",
    "InterproceduralLiveness",
    "Interval",
    "IntervalLattice",
    "IntervalStates",
    "LoopInfo",
    "MACHINE_TERMINATOR_OPS",
    "MAX_INSTRUCTIONS_PER_CORE",
    "NAC",
    "PURE_DEF_OPS",
    "RangeSeeds",
    "Severity",
    "TERMINATOR_OPS",
    "VerifierReport",
    "VerifyOptions",
    "WcetResult",
    "build_cfg",
    "check_memory",
    "constant_states",
    "dead_stores",
    "estimate_wcet",
    "find_loops",
    "instruction_defs",
    "instruction_uses",
    "interval_states",
    "may_write_registers",
    "reaching_definitions",
    "refine_branch",
    "region_footprint",
    "solve",
    "uninitialized_reads",
    "verify_program",
]
