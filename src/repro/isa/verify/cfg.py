"""Per-function control-flow graphs over the lambda IR.

A :class:`BasicBlock` covers a contiguous run of body indices. Block
boundaries (leaders) are: the function start, every branch/jump target,
and every instruction following a control transfer. ``LABEL`` pseudo
instructions belong to the block they start (or fall inside) but are
excluded from the block's instruction list — they cost nothing and
define nothing.

Edges:

* unconditional ``jmp`` — one edge to the target block;
* conditional branches (``beq``/``bne``/``blt``/``bge``) — taken edge
  plus fallthrough edge;
* terminators (``ret``, ``halt``, ``forward``, ``drop``, ``to_host``)
  — no successors (``ret`` returns to the caller; the packet ops end
  the whole execution);
* everything else — fallthrough.

``call`` is *not* a block boundary: control returns to the next
instruction, so for intraprocedural purposes it is a (summarised)
straight-line instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..instructions import Instruction, Op
from ..program import Function

#: Conditional branch opcodes (taken + fallthrough successors).
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})

#: Opcodes after which control never falls through.
TERMINATOR_OPS = frozenset({Op.RET, Op.HALT, Op.FORWARD, Op.DROP, Op.TO_HOST})

#: Terminators that end the *entire* execution (machine state dies with
#: them) as opposed to returning to a caller.
MACHINE_TERMINATOR_OPS = frozenset({Op.HALT, Op.FORWARD, Op.DROP, Op.TO_HOST})


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    bid: int
    #: Body-index range covered by this block: [start, end).
    start: int
    end: int
    #: ``(body_index, instruction)`` pairs, labels excluded.
    instructions: List[Tuple[int, Instruction]] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's last real instruction (None for label-only blocks)."""
        return self.instructions[-1][1] if self.instructions else None

    @property
    def is_exit(self) -> bool:
        return not self.succs

    @property
    def ends_machine(self) -> bool:
        """True if the block ends the whole execution (not just a call)."""
        term = self.terminator
        return term is not None and term.op in MACHINE_TERMINATOR_OPS


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, function: Function, blocks: List[BasicBlock]) -> None:
        self.function = function
        self.blocks = blocks
        #: Body index -> id of the block covering it.
        self.block_at: Dict[int, int] = {}
        for block in blocks:
            for index in range(block.start, block.end):
                self.block_at[index] = block.bid

    @property
    def entry(self) -> int:
        return 0

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def exit_blocks(self) -> List[BasicBlock]:
        return [block for block in self.blocks if block.is_exit]

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry."""
        if not self.blocks:
            return set()
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def postorder(self) -> List[int]:
        """DFS postorder over the reachable subgraph."""
        if not self.blocks:
            return []
        order: List[int] = []
        seen: Set[int] = set()
        # Iterative DFS with an explicit "children done" marker.
        stack: List[Tuple[int, bool]] = [(self.entry, False)]
        while stack:
            bid, done = stack.pop()
            if done:
                order.append(bid)
                continue
            if bid in seen:
                continue
            seen.add(bid)
            stack.append((bid, True))
            for succ in reversed(self.blocks[bid].succs):
                if succ not in seen:
                    stack.append((succ, False))
        return order

    def reverse_postorder(self) -> List[int]:
        return list(reversed(self.postorder()))

    def back_edges(self) -> List[Tuple[int, int]]:
        """``(source, target)`` edges that close a cycle (DFS ancestors).

        On the reducible CFGs the builder and compiler emit these are
        exactly the loop back edges.
        """
        edges: List[Tuple[int, int]] = []
        colour: Dict[int, int] = {}  # 0 unseen / 1 on stack / 2 done
        if not self.blocks:
            return edges
        stack: List[Tuple[int, bool]] = [(self.entry, False)]
        while stack:
            bid, done = stack.pop()
            if done:
                colour[bid] = 2
                continue
            if colour.get(bid):
                continue
            colour[bid] = 1
            stack.append((bid, True))
            for succ in self.blocks[bid].succs:
                state = colour.get(succ, 0)
                if state == 1:
                    edges.append((bid, succ))
                elif state == 0:
                    stack.append((succ, False))
        return edges

    def natural_loop(self, source: int, header: int) -> Set[int]:
        """Blocks of the natural loop for back edge ``source -> header``."""
        loop = {header, source}
        stack = [source]
        while stack:
            bid = stack.pop()
            if bid == header:
                continue
            for pred in self.blocks[bid].preds:
                if pred not in loop:
                    loop.add(pred)
                    stack.append(pred)
        return loop

    def is_acyclic(self) -> bool:
        return not self.back_edges()


def _branch_target_indices(function: Function) -> Dict[int, str]:
    """Body index of each branch/jmp -> label name it targets."""
    targets: Dict[int, str] = {}
    for index, instruction in enumerate(function.body):
        if instruction.op is Op.JMP or instruction.op in BRANCH_OPS:
            targets[index] = instruction.args[-1]
    return targets


def build_cfg(function: Function) -> CFG:
    """Construct the CFG of ``function``.

    Branches to labels that do not exist get no edge (the program is
    invalid; :meth:`~repro.isa.program.LambdaProgram.validate` reports
    it — the CFG stays well-defined so the verifier can keep going).
    """
    body = function.body
    labels = function.labels()
    branch_sites = _branch_target_indices(function)

    leaders: Set[int] = {0} if body else set()
    for index, label in branch_sites.items():
        target = labels.get(label)
        if target is not None:
            leaders.add(target)
        leaders.add(index + 1)
    for index, instruction in enumerate(body):
        if instruction.op in TERMINATOR_OPS:
            leaders.add(index + 1)
    leaders = {index for index in leaders if index < len(body)}

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    for bid, start in enumerate(ordered):
        end = ordered[bid + 1] if bid + 1 < len(ordered) else len(body)
        block = BasicBlock(bid=bid, start=start, end=end)
        block.instructions = [
            (index, body[index])
            for index in range(start, end)
            if body[index].op is not Op.LABEL
        ]
        blocks.append(block)

    cfg = CFG(function, blocks)

    for block in blocks:
        term = block.terminator
        fallthrough = block.bid + 1 if block.bid + 1 < len(blocks) else None
        if term is None:  # label-only (or empty) block
            if fallthrough is not None:
                block.succs.append(fallthrough)
            continue
        op = term.op
        if op is Op.JMP:
            target = labels.get(term.args[-1])
            if target is not None:
                block.succs.append(cfg.block_at[target])
        elif op in BRANCH_OPS:
            target = labels.get(term.args[-1])
            if target is not None:
                block.succs.append(cfg.block_at[target])
            if fallthrough is not None and fallthrough not in block.succs:
                block.succs.append(fallthrough)
            elif fallthrough is not None and target is None:
                block.succs.append(fallthrough)
        elif op in TERMINATOR_OPS:
            pass
        elif fallthrough is not None:
            block.succs.append(fallthrough)

    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.bid)
    return cfg
