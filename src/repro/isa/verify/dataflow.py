"""A generic worklist dataflow framework over :class:`~.cfg.CFG`.

A :class:`DataflowProblem` declares a direction, a meet operator, a
per-block transfer function, and a per-block *boundary* contribution.
:func:`solve` iterates to a fixpoint with a worklist seeded in reverse
postorder (forward) or postorder (backward), which converges in a
handful of passes on reducible CFGs.

States are opaque to the framework. ``None`` is reserved to mean "no
information yet" (the analysis top / unreached); transfer functions
never see ``None`` and must not mutate their input state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .cfg import CFG, BasicBlock

FORWARD = "forward"
BACKWARD = "backward"

#: Hard cap on worklist pops, as a multiple of block count. Monotone
#: transfer functions over finite lattices converge far below this; the
#: cap turns a non-monotone (buggy) problem into a loud failure instead
#: of a hang.
_MAX_VISITS_PER_BLOCK = 256


class FixpointError(RuntimeError):
    """The worklist failed to converge (non-monotone transfer?)."""


class DataflowProblem:
    """Base class for dataflow analyses."""

    #: ``FORWARD`` or ``BACKWARD``.
    direction: str = FORWARD

    #: After this many in-state updates of one block, :meth:`widen` is
    #: applied to accelerate convergence. 0 disables widening (finite
    #: lattices converge on their own).
    widen_after: int = 0

    def boundary(self, cfg: CFG, block: BasicBlock) -> Optional[Any]:
        """Extra state met into ``block``'s confluence, or None.

        Forward problems typically return the entry state for the entry
        block; backward problems return the exit state for exit blocks.
        """
        return None

    def meet(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, cfg: CFG, block: BasicBlock, state: Any) -> Any:
        """Push ``state`` through ``block`` (input side -> output side)."""
        raise NotImplementedError

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerated join for infinite-height lattices (``old ∇ new``).

        Only called once a block's in-state has been updated
        :attr:`widen_after` times; must return an upper bound of both
        arguments that cannot ascend forever.
        """
        return new

    def edge(self, cfg: CFG, source: BasicBlock, target_bid: int,
             state: Any) -> Optional[Any]:
        """Refine ``source``'s out-state along the edge to ``target_bid``.

        Forward problems only. Returning ``None`` marks the edge
        *infeasible* (e.g. a branch whose condition the analysis proves
        can never take it), which is treated like an unreached source.
        """
        return state


@dataclass
class DataflowResult:
    """Fixpoint states per block.

    For forward problems ``in_states`` is the state at block entry and
    ``out_states`` at block exit; for backward problems ``in_states``
    is the state *before* the block in execution order (the analysis
    result at block entry) and ``out_states`` the state after it.
    A ``None`` state means the block was never reached by the analysis.
    """

    in_states: Dict[int, Any] = field(default_factory=dict)
    out_states: Dict[int, Any] = field(default_factory=dict)
    #: Number of worklist visits until the fixpoint — bounded for any
    #: monotone problem (the property tests assert this).
    iterations: int = 0

    def before(self, bid: int) -> Any:
        return self.in_states.get(bid)

    def after(self, bid: int) -> Any:
        return self.out_states.get(bid)


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowResult:
    """Run ``problem`` over ``cfg`` to a fixpoint."""
    result = DataflowResult()
    blocks = cfg.blocks
    if not blocks:
        return result
    forward = problem.direction == FORWARD

    in_states: Dict[int, Any] = {block.bid: None for block in blocks}
    out_states: Dict[int, Any] = {block.bid: None for block in blocks}

    order = cfg.reverse_postorder() if forward else cfg.postorder()
    work = deque(order)
    queued = set(order)
    visits = 0
    limit = _MAX_VISITS_PER_BLOCK * max(1, len(blocks))
    updates: Dict[int, int] = {}

    while work:
        visits += 1
        if visits > limit:
            raise FixpointError(
                f"dataflow did not converge after {visits} visits on "
                f"{len(blocks)} blocks (function "
                f"{cfg.function.name!r})"
            )
        bid = work.popleft()
        queued.discard(bid)
        block = blocks[bid]

        sources = block.preds if forward else block.succs
        acc = problem.boundary(cfg, block)
        for src in sources:
            src_state = out_states[src] if forward else in_states[src]
            if src_state is None:
                continue
            if forward:
                src_state = problem.edge(cfg, blocks[src], bid, src_state)
                if src_state is None:
                    continue  # Infeasible edge.
            acc = src_state if acc is None else problem.meet(acc, src_state)
        if acc is None:
            continue  # Unreached so far.

        if forward:
            if acc == in_states[bid] and out_states[bid] is not None:
                continue
            if problem.widen_after:
                count = updates.get(bid, 0) + 1
                updates[bid] = count
                if count > problem.widen_after and in_states[bid] is not None:
                    acc = problem.widen(in_states[bid], acc)
                    if acc == in_states[bid] and out_states[bid] is not None:
                        continue
            in_states[bid] = acc
            new_out = problem.transfer(cfg, block, acc)
            if new_out != out_states[bid]:
                out_states[bid] = new_out
                for succ in block.succs:
                    if succ not in queued:
                        work.append(succ)
                        queued.add(succ)
        else:
            if acc == out_states[bid] and in_states[bid] is not None:
                continue
            out_states[bid] = acc
            new_in = problem.transfer(cfg, block, acc)
            if new_in != in_states[bid]:
                in_states[bid] = new_in
                for pred in block.preds:
                    if pred not in queued:
                        work.append(pred)
                        queued.add(pred)

    result.in_states = in_states
    result.out_states = out_states
    result.iterations = visits
    return result
