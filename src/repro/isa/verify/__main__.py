"""Standalone lint CLI: ``python -m repro.isa.verify <file.asm> ...``.

Verifies lambda assembly files (and, with ``--workloads``, every
built-in benchmark program) and prints one report per program. Exits
non-zero when any program has error-grade findings (or, with
``--strict``, any warnings).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

from ..asm import AsmError, assemble
from ..program import LambdaProgram
from .report import VerifierReport
from .verifier import VerifyOptions, verify_program


def _load_asm(path: str) -> LambdaProgram:
    return assemble(Path(path).read_text())


def _workload_programs() -> List[Tuple[str, LambdaProgram]]:
    from ...workloads.intrinsics import install_intrinsics
    from ...workloads.registry import standard_workloads

    install_intrinsics()
    return [
        (name, spec.nic_program())
        for name, spec in sorted(standard_workloads().items())
    ]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.isa.verify",
        description="Statically verify lambda IR programs.",
    )
    parser.add_argument("files", nargs="*", metavar="FILE.asm",
                        help="assembly files to verify")
    parser.add_argument("--workloads", action="store_true",
                        help="also verify every built-in workload program")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write all reports as JSON to PATH "
                             "('-' for stdout)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("--quiet", action="store_true",
                        help="only print failing programs")
    args = parser.parse_args(argv)

    if not args.files and not args.workloads:
        parser.error("nothing to verify (pass files and/or --workloads)")

    reports: List[VerifierReport] = []
    load_failures = 0
    targets: List[Tuple[str, LambdaProgram]] = []
    for path in args.files:
        try:
            targets.append((path, _load_asm(path)))
        except (OSError, AsmError, ValueError) as exc:
            print(f"{path}: failed to load: {exc}", file=sys.stderr)
            load_failures += 1
    if args.workloads:
        targets.extend(_workload_programs())

    failed = load_failures
    for label, program in targets:
        report = verify_program(program, VerifyOptions())
        reports.append(report)
        bad = not report.ok or (args.strict and report.warnings)
        if bad:
            failed += 1
        if bad or not args.quiet:
            print(report.summary())

    if args.json_path:
        payload = json.dumps([r.to_dict() for r in reports], indent=2)
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).write_text(payload + "\n")

    total = len(reports)
    ok = sum(1 for r in reports if r.ok)
    print(f"verified {total} program(s): {ok} ok, {total - ok} rejected",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
