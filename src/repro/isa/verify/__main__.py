"""Standalone lint CLI: ``python -m repro.isa.verify <file.asm> ...``.

Verifies lambda assembly files (and, with ``--workloads``, every
built-in benchmark program) and prints one report per program. Exits
non-zero when any program has error-grade findings (or, with
``--strict``, any warnings; or, with ``--forbid CODE``, any finding
with that code). ``--explain FUNC@IDX`` dumps the abstract state
(value ranges and constants) the analyses proved at a program point;
``--wcet-delta PATH`` writes a markdown table comparing each program's
WCET with and without the interval analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from ..asm import AsmError, assemble
from ..program import LambdaProgram
from .analyses import NAC, constant_states
from .intervals import ANY, interval_states
from .report import VerifierReport
from .verifier import VerifyOptions, verify_program


def _load_asm(path: str) -> LambdaProgram:
    return assemble(Path(path).read_text())


def _explain_point(program: LambdaProgram, spec: str) -> int:
    """Print the abstract state before ``FUNC@IDX`` in ``program``."""
    func_name, _, index_text = spec.partition("@")
    try:
        index = int(index_text)
    except ValueError:
        print(f"--explain expects FUNC@IDX, got {spec!r}", file=sys.stderr)
        return 1
    function = program.functions.get(func_name)
    if function is None:
        return 0  # Not this program; another target may match.
    if not 0 <= index < len(function.body):
        print(f"{program.name}: {func_name} has no instruction {index}",
              file=sys.stderr)
        return 1
    consts = constant_states(function)
    ranges = interval_states(function, cfg=consts.cfg, program=program)
    instruction = function.body[index]
    print(f"{program.name}: {func_name}@{index}: {instruction!r}")
    state = ranges.before(index)
    const_state = consts.before(index)
    if state is None:
        print("  unreachable (no abstract state)")
        return 0
    for reg in sorted(state):
        value = state[reg]
        const = const_state.get(reg, NAC) if const_state else NAC
        parts = []
        if const is not NAC:
            parts.append(f"const {const!r}")
        if value is not ANY:
            parts.append(f"range {value}")
        if not parts:
            parts.append("unknown (any value)")
        print(f"  {reg}: {'; '.join(parts)}")
    return 0


def _wcet_delta_table(rows: List[Tuple[str, Optional[int], Optional[int]]]
                      ) -> str:
    """Markdown table of (program, wcet without intervals, with)."""
    lines = [
        "| program | WCET (pre-interval) | WCET (interval) | delta |",
        "|---|---|---|---|",
    ]
    for name, before, after in rows:
        fmt = lambda v: "unbounded" if v is None else f"{v} cycles"  # noqa: E731
        if before is None and after is not None:
            delta = "newly bounded"
        elif before is not None and after is not None and before != after:
            delta = f"-{before - after} cycles"
        else:
            delta = "0"
        lines.append(f"| {name} | {fmt(before)} | {fmt(after)} | {delta} |")
    return "\n".join(lines) + "\n"


def _workload_programs() -> List[Tuple[str, LambdaProgram]]:
    from ...workloads.intrinsics import install_intrinsics
    from ...workloads.registry import standard_workloads

    install_intrinsics()
    return [
        (name, spec.nic_program())
        for name, spec in sorted(standard_workloads().items())
    ]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.isa.verify",
        description="Statically verify lambda IR programs.",
    )
    parser.add_argument("files", nargs="*", metavar="FILE.asm",
                        help="assembly files to verify")
    parser.add_argument("--workloads", action="store_true",
                        help="also verify every built-in workload program")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write all reports as JSON to PATH "
                             "('-' for stdout)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("--quiet", action="store_true",
                        help="only print failing programs")
    parser.add_argument("--forbid", metavar="CODE", action="append",
                        default=[],
                        help="exit non-zero if any finding has this code "
                             "(repeatable), regardless of severity")
    parser.add_argument("--explain", metavar="FUNC@IDX",
                        help="print the abstract state (ranges, constants) "
                             "before the given program point")
    parser.add_argument("--wcet-delta", metavar="PATH", dest="wcet_delta",
                        help="write a markdown WCET before/after-intervals "
                             "table to PATH ('-' for stdout)")
    args = parser.parse_args(argv)

    if not args.files and not args.workloads:
        parser.error("nothing to verify (pass files and/or --workloads)")

    reports: List[VerifierReport] = []
    load_failures = 0
    targets: List[Tuple[str, LambdaProgram]] = []
    for path in args.files:
        try:
            targets.append((path, _load_asm(path)))
        except (OSError, AsmError, ValueError) as exc:
            print(f"{path}: failed to load: {exc}", file=sys.stderr)
            load_failures += 1
    if args.workloads:
        targets.extend(_workload_programs())

    failed = load_failures
    forbidden = set(args.forbid)
    delta_rows: List[Tuple[str, Optional[int], Optional[int]]] = []
    for label, program in targets:
        report = verify_program(program, VerifyOptions())
        reports.append(report)
        hit = [f for f in report.findings if f.code in forbidden]
        bad = not report.ok or (args.strict and report.warnings) or hit
        if bad:
            failed += 1
        if bad or not args.quiet:
            print(report.summary())
        for finding in hit:
            print(f"{report.program}: forbidden finding: {finding}",
                  file=sys.stderr)
        if args.explain:
            failed += _explain_point(program, args.explain)
        if args.wcet_delta:
            baseline = verify_program(
                program, VerifyOptions(use_intervals=False))
            delta_rows.append((report.program, baseline.wcet_cycles,
                               report.wcet_cycles))

    if args.wcet_delta:
        table = _wcet_delta_table(delta_rows)
        if args.wcet_delta == "-":
            print(table, end="")
        else:
            Path(args.wcet_delta).write_text(table)

    if args.json_path:
        payload = json.dumps([r.to_dict() for r in reports], indent=2)
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).write_text(payload + "\n")

    total = len(reports)
    ok = sum(1 for r in reports if r.ok)
    print(f"verified {total} program(s): {ok} ok, {total - ok} rejected",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
