"""Loop-bound inference and worst-case execution-time estimation.

The cost model is the interpreter's own
(:data:`~repro.isa.instructions.BASE_CYCLES` per op,
:data:`~repro.isa.instructions.REGION_ACCESS_CYCLES` per memory access,
64 B DMA bursts for bulk ops), so a static bound is directly comparable
to — and must dominate — any dynamic
:attr:`~repro.isa.interpreter.ExecutionResult.cycles` observation.

Method:

* **acyclic** CFGs get the exact longest-path bound (dynamic
  programming over postorder);
* **cyclic** CFGs need loop bounds. For every natural loop the analysis
  looks for a *counted-loop* shape: a conditional branch with one
  successor outside the loop comparing a register against a constant,
  where that register has a constant initial value on loop entry and
  exactly one ``add``/``sub`` self-update with constant stride inside
  the loop (and no call in the loop can clobber it). The trip count is
  solved in closed form, plus one iteration of slack for test-order
  ambiguity. Bounded loops yield the sound (if loose) product bound
  ``sum(block_cost x prod(enclosing loop bounds))``; an unbounded loop
  is an error and the WCET is unknown;
* calls add the callee's WCET (call graph processed callees-first;
  recursion is an error);
* intrinsics use their registered static cost model
  (``register_intrinsic(..., wcet=...)``); an intrinsic without one
  leaves the WCET unknown with a warning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..instructions import (
    BASE_CYCLES,
    Instruction,
    Op,
    REGION_ACCESS_CYCLES,
    is_mem_ref,
    is_register,
)
from ..interpreter import BULK_BURST_BYTES, intrinsic_wcet
from ..program import LambdaProgram
from .analyses import (
    ALL_REGISTERS,
    ConstantStates,
    NAC,
    constant_states,
    instruction_defs,
    may_write_registers,
)
from .cfg import BRANCH_OPS, CFG, build_cfg
from .report import Finding, Severity


@dataclass
class LoopInfo:
    """One natural loop (back edges merged by header)."""

    header: int
    blocks: FrozenSet[int]
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: Maximum iterations of the loop body, or None if not inferred.
    bound: Optional[int] = None
    #: The induction register the bound was derived from.
    counter: Optional[str] = None
    #: Body index of the exit-test branch used for the bound.
    exit_index: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return self.bound is not None


@dataclass
class WcetResult:
    """Static worst-case cycles for a whole program."""

    program: str
    #: WCET of one invocation from the entry; None when unknown.
    total_cycles: Optional[int] = None
    function_cycles: Dict[str, Optional[int]] = field(default_factory=dict)
    loops: Dict[str, List[LoopInfo]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Loop detection and bound inference
# ---------------------------------------------------------------------------


def find_loops(
    cfg: CFG,
    consts: Optional[ConstantStates] = None,
    program: Optional[LambdaProgram] = None,
) -> List[LoopInfo]:
    """Natural loops of ``cfg`` with inferred bounds where possible."""
    back_edges = cfg.back_edges()
    if not back_edges:
        return []
    if consts is None:
        consts = constant_states(cfg.function, cfg=cfg)
    by_header: Dict[int, LoopInfo] = {}
    for source, header in back_edges:
        info = by_header.get(header)
        body = cfg.natural_loop(source, header)
        if info is None:
            by_header[header] = LoopInfo(
                header=header, blocks=frozenset(body),
                back_edges=[(source, header)],
            )
        else:
            info.blocks = info.blocks | frozenset(body)
            info.back_edges.append((source, header))
    loops = [by_header[h] for h in sorted(by_header)]
    for loop in loops:
        _infer_bound(cfg, loop, consts, program)
    return loops


#: Exit-predicate kinds over the counter value v and a limit L.
_NEGATE = {"lt": "ge", "ge": "lt", "gt": "le", "le": "gt",
           "eq": "ne", "ne": "eq"}
_BRANCH_KIND = {Op.BEQ: "eq", Op.BNE: "ne", Op.BLT: "lt", Op.BGE: "ge"}
_SWAP = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
         "eq": "eq", "ne": "ne"}


def _infer_bound(cfg: CFG, loop: LoopInfo, consts: ConstantStates,
                 program: Optional[LambdaProgram]) -> None:
    best: Optional[Tuple[int, str, int]] = None  # (bound, counter, index)
    for bid in sorted(loop.blocks):
        block = cfg.block(bid)
        term = block.terminator
        if term is None or term.op not in BRANCH_OPS:
            continue
        exit_kind = _exit_kind(cfg, loop, block, term)
        if exit_kind is None:
            continue
        index = block.instructions[-1][0]
        candidate = _counted_bound(cfg, loop, term, exit_kind, index,
                                   consts, program)
        if candidate is None:
            continue
        bound, counter = candidate
        if best is None or bound < best[0]:
            best = (bound, counter, index)
    if best is not None:
        loop.bound, loop.counter, loop.exit_index = best


def _exit_kind(cfg: CFG, loop: LoopInfo, block, term) -> Optional[bool]:
    """True: loop exits when the branch is taken; False: on fallthrough.

    None when neither successor leaves the loop (not an exit test).
    """
    labels = cfg.function.labels()
    target_index = labels.get(term.args[-1])
    taken = cfg.block_at.get(target_index) if target_index is not None else None
    fallthrough = block.bid + 1 if block.bid + 1 < len(cfg.blocks) else None
    if taken is not None and taken not in loop.blocks:
        return True
    if fallthrough is not None and fallthrough not in loop.blocks:
        return False
    return None


def _counted_bound(
    cfg: CFG,
    loop: LoopInfo,
    term: Instruction,
    exits_on_true: bool,
    test_index: int,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
) -> Optional[Tuple[int, str]]:
    a, b = term.args[0], term.args[1]
    a_value = consts.value_before(test_index, a)
    b_value = consts.value_before(test_index, b)
    kind = _BRANCH_KIND[term.op]
    if is_register(a) and a_value is NAC and b_value is not NAC:
        counter, limit = a, b_value
    elif is_register(b) and b_value is NAC and a_value is not NAC:
        counter, limit = b, a_value
        kind = _SWAP[kind]  # cond(L, v) -> equivalent cond on v.
    else:
        return None
    if not exits_on_true:
        kind = _NEGATE[kind]

    step = _unique_step(cfg, loop, counter, consts, program)
    if step is None:
        return None
    init = _entry_value(cfg, loop, counter, consts)
    if init is None:
        return None
    trips = _first_exit(kind, init, step, limit)
    if trips is None:
        return None
    # +1 slack: the test may observe the counter before or after the
    # update depending on loop shape; one extra body iteration covers
    # both orders.
    return trips + 1, counter


def _unique_step(
    cfg: CFG,
    loop: LoopInfo,
    counter: str,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
) -> Optional[int]:
    """The constant stride of ``counter``'s single in-loop update."""
    step: Optional[int] = None
    for bid in loop.blocks:
        for index, instruction in cfg.block(bid).instructions:
            if instruction.op is Op.CALL:
                callee_writes = (
                    may_write_registers(program, instruction.args[0])
                    if program is not None else ALL_REGISTERS
                )
                if counter in callee_writes:
                    return None
                continue
            if counter not in instruction_defs(instruction):
                continue
            if step is not None:
                return None  # More than one update: give up.
            step = _step_of(instruction, counter, consts, index)
            if step is None:
                return None
    if step == 0:
        return None
    return step


def _step_of(instruction: Instruction, counter: str,
             consts: ConstantStates, index: int) -> Optional[int]:
    op = instruction.op
    args = instruction.args
    if op not in (Op.ADD, Op.SUB) or args[0] != counter:
        return None
    if args[1] == counter:
        stride = consts.value_before(index, args[2])
    elif op is Op.ADD and args[2] == counter:
        stride = consts.value_before(index, args[1])
    else:
        return None
    if stride is NAC or not isinstance(stride, int):
        return None
    return -stride if op is Op.SUB else stride


def _entry_value(cfg: CFG, loop: LoopInfo, counter: str,
                 consts: ConstantStates) -> Optional[int]:
    """Constant value of ``counter`` on entering the loop header."""
    value: Any = None
    header = cfg.block(loop.header)
    for pred in header.preds:
        if pred in loop.blocks:
            continue  # Back edge or in-loop path.
        state = consts.result.after(pred)
        if state is None:
            continue  # Unreachable predecessor.
        pred_value = state.get(counter, NAC)
        if pred_value is NAC:
            return None
        if value is None:
            value = pred_value
        elif value != pred_value:
            return None
    if value is None or not isinstance(value, int):
        return None
    return value


def _first_exit(kind: str, init: int, step: int, limit: Any) -> Optional[int]:
    """Smallest k >= 1 with the exit predicate true of ``init + k*step``."""
    first = init + step
    if kind == "ne":
        return 1 if first != limit else 2  # step != 0, so k=2 differs.
    if kind == "eq":
        if not isinstance(limit, int):
            return None
        delta = limit - init
        if delta % step == 0 and delta // step >= 1:
            return delta // step
        return None
    if not isinstance(limit, (int, float)):
        return None
    if kind in ("lt", "le"):
        hit = first < limit if kind == "lt" else first <= limit
        if hit:
            return 1
        if step >= 0:
            return None  # Moving away from the exit region.
        if kind == "lt":
            k = math.floor((init - limit) / -step) + 1
        else:
            k = math.ceil((init - limit) / -step)
        return max(int(k), 1)
    # gt / ge
    hit = first > limit if kind == "gt" else first >= limit
    if hit:
        return 1
    if step <= 0:
        return None
    if kind == "gt":
        k = math.floor((limit - init) / step) + 1
    else:
        k = math.ceil((limit - init) / step)
    return max(int(k), 1)


# ---------------------------------------------------------------------------
# WCET estimation
# ---------------------------------------------------------------------------


def _instruction_wcet(
    program: LambdaProgram,
    instruction: Instruction,
    index: int,
    consts: ConstantStates,
    callee_wcet: Dict[str, Optional[int]],
    findings: List[Finding],
    function_name: str,
) -> Optional[int]:
    op = instruction.op
    cycles = BASE_CYCLES[op]
    if op in (Op.LOAD, Op.LOADD, Op.STORE, Op.STORED):
        memref = instruction.args[-1] if op in (Op.LOAD, Op.LOADD) else (
            instruction.args[-2] if op is Op.STORE else instruction.args[0]
        )
        obj = program.objects.get(memref[1]) if is_mem_ref(memref) else None
        if obj is not None:
            cycles += REGION_ACCESS_CYCLES[obj.region]
        return cycles
    if op is Op.MEMCPY:
        dst_ref, src_ref, length = instruction.args
        n = consts.const_before(index, length)
        dst = program.objects.get(dst_ref[1]) if is_mem_ref(dst_ref) else None
        src = program.objects.get(src_ref[1]) if is_mem_ref(src_ref) else None
        if not isinstance(n, int):
            sizes = [o.size_bytes for o in (dst, src) if o is not None]
            n = min(sizes) if sizes else BULK_BURST_BYTES
        bursts = max(1, math.ceil(max(n, 0) / BULK_BURST_BYTES))
        for obj in (src, dst):
            if obj is not None:
                cycles += bursts * REGION_ACCESS_CYCLES[obj.region]
        return cycles
    if op is Op.INTRINSIC:
        name = instruction.args[0]
        model = intrinsic_wcet(name)
        if model is None:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="no-wcet-model",
                message=f"intrinsic {name!r} has no static cost model; "
                        "WCET is unknown",
                function=function_name,
                index=index,
                instruction=repr(instruction),
            ))
            return None
        reader = lambda operand: consts.const_before(index, operand)  # noqa: E731
        try:
            return cycles + int(model(program, instruction.args[1:], reader))
        except Exception as exc:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="no-wcet-model",
                message=f"cost model for intrinsic {name!r} failed: {exc}",
                function=function_name,
                index=index,
                instruction=repr(instruction),
            ))
            return None
    if op is Op.CALL:
        callee = callee_wcet.get(instruction.args[0])
        if callee is None:
            return None
        return cycles + callee
    return cycles


def _function_wcet(
    program: LambdaProgram,
    name: str,
    cfg: CFG,
    consts: ConstantStates,
    callee_wcet: Dict[str, Optional[int]],
    findings: List[Finding],
) -> Tuple[Optional[int], List[LoopInfo]]:
    reachable = cfg.reachable()
    if not reachable:
        return 0, []
    block_cost: Dict[int, Optional[int]] = {}
    for bid in reachable:
        total: Optional[int] = 0
        for index, instruction in cfg.block(bid).instructions:
            cost = _instruction_wcet(program, instruction, index, consts,
                                     callee_wcet, findings, name)
            if cost is None:
                total = None
                break
            total += cost
        block_cost[bid] = total

    loops = find_loops(cfg, consts, program)
    for loop in loops:
        if loop.bound is None:
            anchor = loop.exit_index
            if anchor is None:
                header_block = cfg.block(loop.header)
                anchor = header_block.instructions[0][0] \
                    if header_block.instructions else None
            findings.append(Finding(
                severity=Severity.ERROR,
                code="unbounded-loop",
                message=(
                    f"cannot bound loop with header block {loop.header} "
                    f"(no counted-loop exit test found)"
                ),
                function=name,
                index=anchor,
            ))

    if any(block_cost[bid] is None for bid in reachable):
        return None, loops

    if not loops:
        # Exact longest path over the acyclic reachable subgraph.
        memo: Dict[int, int] = {}
        for bid in cfg.postorder():  # Successors visited before bid.
            succ_max = max(
                (memo[s] for s in cfg.block(bid).succs if s in memo),
                default=0,
            )
            memo[bid] = block_cost[bid] + succ_max
        return memo.get(cfg.entry, 0), loops

    if any(loop.bound is None for loop in loops):
        return None, loops

    total = 0
    for bid in reachable:
        multiplier = 1
        for loop in loops:
            if bid in loop.blocks:
                multiplier *= loop.bound
        total += block_cost[bid] * multiplier
    return total, loops


def estimate_wcet(
    program: LambdaProgram,
    entry: Optional[str] = None,
    consts: Optional[Dict[str, ConstantStates]] = None,
) -> WcetResult:
    """Static WCET of one invocation of ``program`` from its entry."""
    entry = entry or program.entry
    result = WcetResult(program=program.name)
    consts = dict(consts) if consts else {}
    cfgs: Dict[str, CFG] = {}

    def analysis_for(name: str) -> ConstantStates:
        cached = consts.get(name)
        if cached is None:
            cfg = cfgs.setdefault(name, build_cfg(program.functions[name]))
            cached = constant_states(program.functions[name], cfg=cfg)
            consts[name] = cached
        return cached

    # Callees-first order over the call graph; recursion is an error.
    order: List[str] = []
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(name: str) -> bool:
        """Returns False if a cycle goes through ``name``."""
        if name not in program.functions:
            return True  # Structural validation reports the bad call.
        mark = state.get(name)
        if mark == 2:
            return True
        if mark == 1:
            return False
        state[name] = 1
        ok = True
        for callee in program.functions[name].called_functions():
            if not visit(callee):
                ok = False
                if callee not in result.function_cycles:
                    result.function_cycles[callee] = None
        state[name] = 2
        order.append(name)
        if not ok:
            result.findings.append(Finding(
                severity=Severity.ERROR,
                code="recursion",
                message=f"recursive call cycle through {name!r}; "
                        "WCET is unbounded",
                function=name,
            ))
            result.function_cycles[name] = None
        return ok

    visit(entry)

    for name in order:
        if result.function_cycles.get(name, 0) is None:
            continue  # Part of a recursion cycle.
        cfg = cfgs.setdefault(name, build_cfg(program.functions[name]))
        cycles, loops = _function_wcet(
            program, name, cfg, analysis_for(name),
            result.function_cycles, result.findings,
        )
        result.function_cycles[name] = cycles
        if loops:
            result.loops[name] = loops

    result.total_cycles = result.function_cycles.get(entry)
    return result
