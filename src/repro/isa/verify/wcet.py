"""Loop-bound inference and worst-case execution-time estimation.

The cost model is the interpreter's own
(:data:`~repro.isa.instructions.BASE_CYCLES` per op,
:data:`~repro.isa.instructions.REGION_ACCESS_CYCLES` per memory access,
64 B DMA bursts for bulk ops), so a static bound is directly comparable
to — and must dominate — any dynamic
:attr:`~repro.isa.interpreter.ExecutionResult.cycles` observation.

Method:

* **acyclic** CFGs get the exact longest-path bound (dynamic
  programming over postorder);
* **cyclic** CFGs need loop bounds. For every natural loop the analysis
  looks for a *counted-loop* shape: a conditional branch with one
  successor outside the loop comparing a register against a constant,
  where that register has a constant initial value on loop entry and
  exactly one ``add``/``sub`` self-update with constant stride inside
  the loop (and no call in the loop can clobber it). The trip count is
  solved in closed form, plus one iteration of slack for test-order
  ambiguity. When constant propagation cannot pin the limit or the
  initial value, the interval analysis (:mod:`.intervals`) supplies
  finite ranges instead and the trip count is maximised over the range
  corners (sound because the first-exit iteration is monotone in both
  endpoints for a fixed stride) — this bounds loops whose limit comes
  from a declared header field, e.g. ``hload``-ed lengths;
* bounded loops yield the sound (if loose) product bound
  ``sum(block_cost x prod(enclosing loop bounds))``. When the loop
  nesting is proper the analysis also computes a *path-sensitive*
  collapse — each loop region is reduced to ``full_iterations x
  longest-single-iteration-path + longest-exit-path`` over a DAG with
  inner loops collapsed to summary nodes — and reports
  ``min(product, collapsed)``. An unbounded loop is an error and the
  WCET is unknown;
* calls add the callee's WCET (call graph processed callees-first;
  recursion is an error);
* intrinsics use their registered static cost model
  (``register_intrinsic(..., wcet=...)``); an intrinsic without one
  leaves the WCET unknown with a warning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..instructions import (
    BASE_CYCLES,
    Instruction,
    Op,
    REGION_ACCESS_CYCLES,
    is_mem_ref,
    is_register,
)
from ..interpreter import BULK_BURST_BYTES, intrinsic_wcet
from ..program import LambdaProgram
from .analyses import (
    ALL_REGISTERS,
    ConstantStates,
    NAC,
    constant_states,
    instruction_defs,
    may_write_registers,
)
from .cfg import BRANCH_OPS, CFG, build_cfg
from .intervals import Interval, IntervalStates, interval_states
from .report import Finding, Severity


@dataclass
class LoopInfo:
    """One natural loop (back edges merged by header)."""

    header: int
    blocks: FrozenSet[int]
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: Maximum iterations of the loop body, or None if not inferred.
    bound: Optional[int] = None
    #: The induction register the bound was derived from.
    counter: Optional[str] = None
    #: Body index of the exit-test branch used for the bound.
    exit_index: Optional[int] = None
    #: How the bound was established: "counted" (constant propagation)
    #: or "interval" (range corners).
    bound_source: Optional[str] = None
    #: Interval-derived cap on *complete* iterations (executions of the
    #: counter update), when the update runs on every iteration. May be
    #: tighter than ``bound - 1``; used by the path-sensitive collapse.
    body_trips: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return self.bound is not None


@dataclass
class WcetResult:
    """Static worst-case cycles for a whole program."""

    program: str
    #: WCET of one invocation from the entry; None when unknown.
    total_cycles: Optional[int] = None
    function_cycles: Dict[str, Optional[int]] = field(default_factory=dict)
    loops: Dict[str, List[LoopInfo]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    #: Per-function bound method: "longest-path" (acyclic, exact),
    #: "loop-product", "path-sensitive-loops", or "unknown".
    function_method: Dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Loop detection and bound inference
# ---------------------------------------------------------------------------


def find_loops(
    cfg: CFG,
    consts: Optional[ConstantStates] = None,
    program: Optional[LambdaProgram] = None,
    ranges: Optional[IntervalStates] = None,
) -> List[LoopInfo]:
    """Natural loops of ``cfg`` with inferred bounds where possible.

    ``ranges`` (an :func:`~.intervals.interval_states` result) enables
    the interval fallback for bounds constant propagation cannot pin and
    the ``body_trips`` refinement.
    """
    back_edges = cfg.back_edges()
    if not back_edges:
        return []
    if consts is None:
        consts = constant_states(cfg.function, cfg=cfg)
    by_header: Dict[int, LoopInfo] = {}
    for source, header in back_edges:
        info = by_header.get(header)
        body = cfg.natural_loop(source, header)
        if info is None:
            by_header[header] = LoopInfo(
                header=header, blocks=frozenset(body),
                back_edges=[(source, header)],
            )
        else:
            info.blocks = info.blocks | frozenset(body)
            info.back_edges.append((source, header))
    loops = [by_header[h] for h in sorted(by_header)]
    for loop in loops:
        _infer_bound(cfg, loop, consts, program, ranges)
    return loops


#: Exit-predicate kinds over the counter value v and a limit L.
_NEGATE = {"lt": "ge", "ge": "lt", "gt": "le", "le": "gt",
           "eq": "ne", "ne": "eq"}
_BRANCH_KIND = {Op.BEQ: "eq", Op.BNE: "ne", Op.BLT: "lt", Op.BGE: "ge"}
_SWAP = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
         "eq": "eq", "ne": "ne"}


def _infer_bound(cfg: CFG, loop: LoopInfo, consts: ConstantStates,
                 program: Optional[LambdaProgram],
                 ranges: Optional[IntervalStates] = None) -> None:
    # (bound, counter, index, source)
    best: Optional[Tuple[int, str, int, str]] = None
    for bid in sorted(loop.blocks):
        block = cfg.block(bid)
        term = block.terminator
        if term is None or term.op not in BRANCH_OPS:
            continue
        exit_kind = _exit_kind(cfg, loop, block, term)
        if exit_kind is None:
            continue
        index = block.instructions[-1][0]
        candidate = _counted_bound(cfg, loop, term, exit_kind, index,
                                   consts, program)
        source = "counted"
        if candidate is None and ranges is not None:
            candidate = _interval_bound(cfg, loop, term, exit_kind, index,
                                        consts, program, ranges)
            source = "interval"
        if candidate is None:
            continue
        bound, counter = candidate
        if best is None or bound < best[0]:
            best = (bound, counter, index, source)
    if best is not None:
        loop.bound, loop.counter, loop.exit_index, loop.bound_source = best
        if ranges is not None:
            loop.body_trips = _body_trips(cfg, loop, consts, program, ranges)


def _exit_kind(cfg: CFG, loop: LoopInfo, block, term) -> Optional[bool]:
    """True: loop exits when the branch is taken; False: on fallthrough.

    None when neither successor leaves the loop (not an exit test).
    """
    labels = cfg.function.labels()
    target_index = labels.get(term.args[-1])
    taken = cfg.block_at.get(target_index) if target_index is not None else None
    fallthrough = block.bid + 1 if block.bid + 1 < len(cfg.blocks) else None
    if taken is not None and taken not in loop.blocks:
        return True
    if fallthrough is not None and fallthrough not in loop.blocks:
        return False
    return None


def _counted_bound(
    cfg: CFG,
    loop: LoopInfo,
    term: Instruction,
    exits_on_true: bool,
    test_index: int,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
) -> Optional[Tuple[int, str]]:
    a, b = term.args[0], term.args[1]
    a_value = consts.value_before(test_index, a)
    b_value = consts.value_before(test_index, b)
    kind = _BRANCH_KIND[term.op]
    if is_register(a) and a_value is NAC and b_value is not NAC:
        counter, limit = a, b_value
    elif is_register(b) and b_value is NAC and a_value is not NAC:
        counter, limit = b, a_value
        kind = _SWAP[kind]  # cond(L, v) -> equivalent cond on v.
    else:
        return None
    if not exits_on_true:
        kind = _NEGATE[kind]

    step = _unique_step(cfg, loop, counter, consts, program)
    if step is None:
        return None
    init = _entry_value(cfg, loop, counter, consts)
    if init is None:
        return None
    trips = _first_exit(kind, init, step, limit)
    if trips is None:
        return None
    # +1 slack: the test may observe the counter before or after the
    # update depending on loop shape; one extra body iteration covers
    # both orders.
    return trips + 1, counter


def _unique_step(
    cfg: CFG,
    loop: LoopInfo,
    counter: str,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
) -> Optional[int]:
    """The constant stride of ``counter``'s single in-loop update."""
    update = _unique_update(cfg, loop, counter, consts, program)
    return update[0] if update is not None else None


def _unique_update(
    cfg: CFG,
    loop: LoopInfo,
    counter: str,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
) -> Optional[Tuple[int, int, int]]:
    """``(stride, body_index, bid)`` of ``counter``'s single in-loop update."""
    found: Optional[Tuple[int, int, int]] = None
    for bid in loop.blocks:
        for index, instruction in cfg.block(bid).instructions:
            if instruction.op is Op.CALL:
                callee_writes = (
                    may_write_registers(program, instruction.args[0])
                    if program is not None else ALL_REGISTERS
                )
                if counter in callee_writes:
                    return None
                continue
            if counter not in instruction_defs(instruction):
                continue
            if found is not None:
                return None  # More than one update: give up.
            step = _step_of(instruction, counter, consts, index)
            if step is None or step == 0:
                return None
            found = (step, index, bid)
    return found


def _step_of(instruction: Instruction, counter: str,
             consts: ConstantStates, index: int) -> Optional[int]:
    op = instruction.op
    args = instruction.args
    if op not in (Op.ADD, Op.SUB) or args[0] != counter:
        return None
    if args[1] == counter:
        stride = consts.value_before(index, args[2])
    elif op is Op.ADD and args[2] == counter:
        stride = consts.value_before(index, args[1])
    else:
        return None
    if stride is NAC or not isinstance(stride, int):
        return None
    return -stride if op is Op.SUB else stride


def _entry_value(cfg: CFG, loop: LoopInfo, counter: str,
                 consts: ConstantStates) -> Optional[int]:
    """Constant value of ``counter`` on entering the loop header."""
    value: Any = None
    header = cfg.block(loop.header)
    for pred in header.preds:
        if pred in loop.blocks:
            continue  # Back edge or in-loop path.
        state = consts.result.after(pred)
        if state is None:
            continue  # Unreachable predecessor.
        pred_value = state.get(counter, NAC)
        if pred_value is NAC:
            return None
        if value is None:
            value = pred_value
        elif value != pred_value:
            return None
    if value is None or not isinstance(value, int):
        return None
    return value


def _first_exit(kind: str, init: int, step: int, limit: Any) -> Optional[int]:
    """Smallest k >= 1 with the exit predicate true of ``init + k*step``."""
    first = init + step
    if kind == "ne":
        return 1 if first != limit else 2  # step != 0, so k=2 differs.
    if kind == "eq":
        if not isinstance(limit, int):
            return None
        delta = limit - init
        if delta % step == 0 and delta // step >= 1:
            return delta // step
        return None
    if not isinstance(limit, (int, float)):
        return None
    if kind in ("lt", "le"):
        hit = first < limit if kind == "lt" else first <= limit
        if hit:
            return 1
        if step >= 0:
            return None  # Moving away from the exit region.
        if kind == "lt":
            k = math.floor((init - limit) / -step) + 1
        else:
            k = math.ceil((init - limit) / -step)
        return max(int(k), 1)
    # gt / ge
    hit = first > limit if kind == "gt" else first >= limit
    if hit:
        return 1
    if step <= 0:
        return None
    if kind == "gt":
        k = math.floor((limit - init) / step) + 1
    else:
        k = math.ceil((limit - init) / step)
    return max(int(k), 1)


# ---------------------------------------------------------------------------
# Interval-derived loop bounds
# ---------------------------------------------------------------------------


def _interval_bound(
    cfg: CFG,
    loop: LoopInfo,
    term: Instruction,
    exits_on_true: bool,
    test_index: int,
    consts: ConstantStates,
    program: Optional[LambdaProgram],
    ranges: IntervalStates,
) -> Optional[Tuple[int, str]]:
    """Counted-loop bound with the init/limit given by intervals.

    Sound only when the limit operand is loop-invariant (seeded header /
    metadata reads are invariant by construction — any store to them
    unseeds the range program-wide) and every range corner yields a
    finite first-exit iteration.
    """
    a, b = term.args[0], term.args[1]
    kind0 = _BRANCH_KIND[term.op]
    best: Optional[Tuple[int, str]] = None
    for counter, limit, kind in ((a, b, kind0), (b, a, _SWAP[kind0])):
        if not is_register(counter):
            continue
        update = _unique_update(cfg, loop, counter, consts, program)
        if update is None:
            continue
        step = update[0]
        if not _loop_invariant(cfg, loop, limit, program):
            continue
        limit_iv = ranges.range_before(test_index, limit)
        if limit_iv is None or not limit_iv.is_finite:
            continue
        init_iv = _entry_range(cfg, loop, counter, ranges)
        if init_iv is None or not init_iv.is_finite:
            continue
        if not exits_on_true:
            kind = _NEGATE[kind]
        trips = _corner_trips(kind, init_iv, step, limit_iv)
        if trips is None:
            continue
        # Same +1 slack as the counted path (test-order ambiguity).
        candidate = (trips + 1, counter)
        if best is None or candidate[0] < best[0]:
            best = candidate
    return best


def _loop_invariant(cfg: CFG, loop: LoopInfo, operand: Any,
                    program: Optional[LambdaProgram]) -> bool:
    """True when ``operand``'s value cannot change inside ``loop``.

    Literals are trivially invariant; header/metadata references only
    carry an interval when nothing in the program stores to them, so
    they are invariant whenever a range exists. A register must have no
    in-loop definition and no in-loop call that may clobber it.
    """
    if not is_register(operand):
        return True
    for bid in loop.blocks:
        for _index, instruction in cfg.block(bid).instructions:
            if instruction.op is Op.CALL:
                callee_writes = (
                    may_write_registers(program, instruction.args[0])
                    if program is not None else ALL_REGISTERS
                )
                if operand in callee_writes:
                    return False
                continue
            if operand in instruction_defs(instruction):
                return False
    return True


def _entry_range(cfg: CFG, loop: LoopInfo, counter: str,
                 ranges: IntervalStates) -> Optional[Interval]:
    """Joined interval of ``counter`` over all loop-entry edges."""
    joined: Optional[Interval] = None
    header = cfg.block(loop.header)
    for pred in header.preds:
        if pred in loop.blocks:
            continue  # Back edge or in-loop path.
        state = ranges.result.after(pred)
        if state is None:
            continue  # Unreachable predecessor.
        value = state.get(counter)
        if not isinstance(value, Interval):
            return None
        joined = value if joined is None else joined.join(value)
    return joined


def _corner_trips(kind: str, init: Interval, step: int,
                  limit: Interval) -> Optional[int]:
    """Max first-exit iteration over the init/limit range corners.

    For lt/le/gt/ge the first-exit index is monotone in both the initial
    value and the limit (fixed stride), so the maximum over the four
    corners bounds every concrete pair. ``ne`` exits within two
    iterations for any fixed limit (a strictly monotone counter can
    equal it at most once); ``eq`` needs both ends pinned exactly.
    """
    if kind == "ne":
        if init.is_constant and limit.is_constant:
            return _first_exit("ne", init.lo, step, limit.lo)
        return 2
    if kind == "eq":
        if init.is_constant and limit.is_constant:
            return _first_exit("eq", init.lo, step, limit.lo)
        return None
    trips: List[int] = []
    for start in {init.lo, init.hi}:
        for lim in {limit.lo, limit.hi}:
            k = _first_exit(kind, start, step, lim)
            if k is None:
                return None  # Some corner never exits: unbounded.
            trips.append(k)
    return max(trips)


def _body_trips(cfg: CFG, loop: LoopInfo, consts: ConstantStates,
                program: Optional[LambdaProgram],
                ranges: IntervalStates) -> Optional[int]:
    """Interval-derived cap on executions of the counter update.

    Each update observes a distinct counter value (the unique update is
    the counter's only in-loop definition, so consecutive observations
    differ by exactly the stride); all observations lie in the counter's
    fixpoint interval at the update, so at most
    ``(hi - lo) // |stride| + 1`` updates can run. This caps *complete*
    iterations only when the update executes on every path from the
    header to a back edge.
    """
    if loop.counter is None:
        return None
    update = _unique_update(cfg, loop, loop.counter, consts, program)
    if update is None:
        return None
    step, index, bid = update
    if not _on_every_iteration(cfg, loop, bid):
        return None
    observed = ranges.range_before(index, loop.counter)
    if observed is None or not observed.is_finite:
        return None
    return (observed.hi - observed.lo) // abs(step) + 1


def _on_every_iteration(cfg: CFG, loop: LoopInfo, update_bid: int) -> bool:
    """True when every header-to-back-edge path passes ``update_bid``."""
    if update_bid == loop.header:
        return True
    sources = {source for source, _header in loop.back_edges}
    if loop.header in sources:
        return False  # Self-edge iteration skips the update block.
    if sources == {update_bid}:
        return True
    # Flood-fill the loop from the header with the update block removed;
    # any back-edge source still reachable has an update-free iteration.
    seen: Set[int] = set()
    stack = [loop.header]
    while stack:
        bid = stack.pop()
        for succ in cfg.block(bid).succs:
            if (succ == update_bid or succ == loop.header
                    or succ not in loop.blocks or succ in seen):
                continue
            seen.add(succ)
            stack.append(succ)
    return not (sources & seen)


# ---------------------------------------------------------------------------
# WCET estimation
# ---------------------------------------------------------------------------


def _instruction_wcet(
    program: LambdaProgram,
    instruction: Instruction,
    index: int,
    consts: ConstantStates,
    callee_wcet: Dict[str, Optional[int]],
    findings: List[Finding],
    function_name: str,
    ranges: Optional[IntervalStates] = None,
) -> Optional[int]:
    op = instruction.op
    cycles = BASE_CYCLES[op]
    if op in (Op.LOAD, Op.LOADD, Op.STORE, Op.STORED):
        memref = instruction.args[-1] if op in (Op.LOAD, Op.LOADD) else (
            instruction.args[-2] if op is Op.STORE else instruction.args[0]
        )
        obj = program.objects.get(memref[1]) if is_mem_ref(memref) else None
        if obj is not None:
            cycles += REGION_ACCESS_CYCLES[obj.region]
        return cycles
    if op is Op.MEMCPY:
        dst_ref, src_ref, length = instruction.args
        n = consts.const_before(index, length)
        dst = program.objects.get(dst_ref[1]) if is_mem_ref(dst_ref) else None
        src = program.objects.get(src_ref[1]) if is_mem_ref(src_ref) else None
        if not isinstance(n, int):
            sizes = [o.size_bytes for o in (dst, src) if o is not None]
            n = min(sizes) if sizes else BULK_BURST_BYTES
            if ranges is not None:
                # A proven upper range on the length can only tighten the
                # object-size fallback (longer copies fault, not cost).
                length_iv = ranges.range_before(index, length)
                if length_iv is not None and length_iv.hi is not None:
                    n = min(n, max(length_iv.hi, 0))
        bursts = max(1, math.ceil(max(n, 0) / BULK_BURST_BYTES))
        for obj in (src, dst):
            if obj is not None:
                cycles += bursts * REGION_ACCESS_CYCLES[obj.region]
        return cycles
    if op is Op.INTRINSIC:
        name = instruction.args[0]
        model = intrinsic_wcet(name)
        if model is None:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="no-wcet-model",
                message=f"intrinsic {name!r} has no static cost model; "
                        "WCET is unknown",
                function=function_name,
                index=index,
                instruction=repr(instruction),
            ))
            return None
        reader = lambda operand: consts.const_before(index, operand)  # noqa: E731
        try:
            return cycles + int(model(program, instruction.args[1:], reader))
        except Exception as exc:
            findings.append(Finding(
                severity=Severity.WARNING,
                code="no-wcet-model",
                message=f"cost model for intrinsic {name!r} failed: {exc}",
                function=function_name,
                index=index,
                instruction=repr(instruction),
            ))
            return None
    if op is Op.CALL:
        callee = callee_wcet.get(instruction.args[0])
        if callee is None:
            return None
        return cycles + callee
    return cycles


def _function_wcet(
    program: LambdaProgram,
    name: str,
    cfg: CFG,
    consts: ConstantStates,
    callee_wcet: Dict[str, Optional[int]],
    findings: List[Finding],
    ranges: Optional[IntervalStates] = None,
) -> Tuple[Optional[int], List[LoopInfo], str]:
    reachable = cfg.reachable()
    if not reachable:
        return 0, [], "longest-path"
    block_cost: Dict[int, Optional[int]] = {}
    for bid in reachable:
        total: Optional[int] = 0
        for index, instruction in cfg.block(bid).instructions:
            cost = _instruction_wcet(program, instruction, index, consts,
                                     callee_wcet, findings, name, ranges)
            if cost is None:
                total = None
                break
            total += cost
        block_cost[bid] = total

    loops = find_loops(cfg, consts, program, ranges)
    for loop in loops:
        if loop.bound is None:
            anchor = loop.exit_index
            if anchor is None:
                header_block = cfg.block(loop.header)
                anchor = header_block.instructions[0][0] \
                    if header_block.instructions else None
            findings.append(Finding(
                severity=Severity.ERROR,
                code="unbounded-loop",
                message=(
                    f"cannot bound loop with header block {loop.header} "
                    f"(no counted-loop exit test found)"
                ),
                function=name,
                index=anchor,
            ))

    if any(block_cost[bid] is None for bid in reachable):
        return None, loops, "unknown"

    if not loops:
        # Exact longest path over the acyclic reachable subgraph.
        memo: Dict[int, int] = {}
        for bid in cfg.postorder():  # Successors visited before bid.
            succ_max = max(
                (memo[s] for s in cfg.block(bid).succs if s in memo),
                default=0,
            )
            memo[bid] = block_cost[bid] + succ_max
        return memo.get(cfg.entry, 0), loops, "longest-path"

    if any(loop.bound is None for loop in loops):
        return None, loops, "unknown"

    total = 0
    for bid in reachable:
        multiplier = 1
        for loop in loops:
            if bid in loop.blocks:
                multiplier *= loop.bound
        total += block_cost[bid] * multiplier

    # The path-sensitive collapse rides the interval pass: with
    # use_intervals=False the historical product bound is reproduced
    # bit-for-bit (the admission differential guard relies on this).
    collapsed = _collapsed_wcet(cfg, reachable, block_cost, loops) \
        if ranges is not None else None
    if collapsed is not None and collapsed < total:
        return collapsed, loops, "path-sensitive-loops"
    return total, loops, "loop-product"


# ---------------------------------------------------------------------------
# Path-sensitive loop collapse
# ---------------------------------------------------------------------------


def _collapsed_wcet(
    cfg: CFG,
    reachable: Set[int],
    block_cost: Dict[int, Optional[int]],
    loops: List[LoopInfo],
) -> Optional[int]:
    """Longest path with each loop collapsed to a summary node.

    Bottom-up over a properly nested loop forest: a loop region becomes
    a DAG (back edges to the header removed, inner loops already
    collapsed) and is summarised as ``full_iterations x longest
    header-rooted path + longest path ending at an exit``, where
    ``full_iterations = min(bound - 1, body_trips)``. Unlike the product
    bound this charges only one path per iteration, so branchy loop
    bodies stop paying for both sides of every branch. Returns None when
    the nesting is improper or a region is not reducible to a DAG — the
    caller keeps the product bound.
    """
    for i, a in enumerate(loops):
        for b in loops[i + 1:]:
            overlap = a.blocks & b.blocks
            if not overlap:
                continue
            if a.blocks == b.blocks or not (
                    a.blocks < b.blocks or b.blocks < a.blocks):
                return None  # Shared or improperly nested bodies.

    children: Dict[int, List[LoopInfo]] = {loop.header: [] for loop in loops}
    top: List[LoopInfo] = []
    for loop in loops:
        enclosing = [outer for outer in loops
                     if outer is not loop and loop.blocks < outer.blocks]
        if enclosing:
            parent = min(enclosing, key=lambda outer: len(outer.blocks))
            children[parent.header].append(loop)
        else:
            top.append(loop)

    totals: Dict[int, Optional[int]] = {}

    def loop_total(loop: LoopInfo) -> Optional[int]:
        cached = totals.get(loop.header)
        if cached is not None or loop.header in totals:
            return cached
        value = _region_longest(
            cfg, loop.blocks, loop.header, children[loop.header],
            block_cost, loop_total, loop=loop,
        )
        totals[loop.header] = value
        return value

    return _region_longest(cfg, frozenset(reachable), cfg.entry, top,
                           block_cost, loop_total, loop=None)


def _region_longest(
    cfg: CFG,
    region: FrozenSet[int],
    start: int,
    inner: List[LoopInfo],
    block_cost: Dict[int, Optional[int]],
    loop_total: Callable[[LoopInfo], Optional[int]],
    loop: Optional[LoopInfo],
) -> Optional[int]:
    """Longest-path cost of ``region`` with ``inner`` loops collapsed.

    With ``loop`` set the region is that loop's body: edges back to the
    header are dropped and the summary ``cap x iter_max + exit_max`` is
    returned; otherwise the plain longest path from ``start``.
    """
    # Natural-loop bodies can pull in unreachable predecessor blocks;
    # only costed (reachable) blocks participate.
    region = frozenset(bid for bid in region if bid in block_cost)
    if start not in region:
        return None
    node_of: Dict[int, Tuple[str, int]] = {}
    for child in inner:
        for bid in child.blocks:
            node_of[bid] = ("loop", child.header)
    for bid in region:
        node_of.setdefault(bid, ("block", bid))
    if node_of.get(start) != ("block", start):
        return None  # Start swallowed by a child region: give up.

    cost: Dict[Tuple[str, int], int] = {}
    for child in inner:
        child_total = loop_total(child)
        if child_total is None:
            return None
        cost[("loop", child.header)] = child_total
    for bid in region:
        node = node_of[bid]
        if node[0] == "block":
            cost[node] = block_cost[bid]  # type: ignore[assignment]

    edges: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    exits: Set[Tuple[str, int]] = set()
    for bid in region:
        node = node_of[bid]
        block = cfg.block(bid)
        if block.is_exit:
            exits.add(node)
        for succ in block.succs:
            if succ not in region:
                exits.add(node)
                continue
            if loop is not None and succ == start:
                continue  # Iteration back edge.
            succ_node = node_of[succ]
            if succ_node != node:
                edges.setdefault(node, set()).add(succ_node)

    order = _topo_order(set(cost), edges)
    if order is None:
        return None  # Residual cycle (irreducible region).

    start_node = ("block", start)
    dist: Dict[Tuple[str, int], int] = {start_node: cost[start_node]}
    for node in order:
        base = dist.get(node)
        if base is None:
            continue
        for succ_node in edges.get(node, ()):
            candidate = base + cost[succ_node]
            if candidate > dist.get(succ_node, candidate - 1):
                dist[succ_node] = candidate

    if loop is None:
        return max(dist.values(), default=0)
    iter_max = max(dist.values(), default=0)
    exit_costs = [dist[node] for node in exits if node in dist]
    exit_max = max(exit_costs) if exit_costs else iter_max
    cap = loop.bound - 1 if loop.bound is not None else None
    if cap is None:
        return None
    if loop.body_trips is not None:
        cap = min(cap, loop.body_trips)
    return max(cap, 0) * iter_max + exit_max


def _topo_order(
    nodes: Set[Tuple[str, int]],
    edges: Dict[Tuple[str, int], Set[Tuple[str, int]]],
) -> Optional[List[Tuple[str, int]]]:
    indegree = {node: 0 for node in nodes}
    for _source, targets in edges.items():
        for target in targets:
            indegree[target] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    order: List[Tuple[str, int]] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for target in edges.get(node, ()):
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    if len(order) != len(nodes):
        return None
    return order


def estimate_wcet(
    program: LambdaProgram,
    entry: Optional[str] = None,
    consts: Optional[Dict[str, ConstantStates]] = None,
    ranges: Optional[Dict[str, IntervalStates]] = None,
    use_intervals: bool = True,
) -> WcetResult:
    """Static WCET of one invocation of ``program`` from its entry.

    ``ranges`` may supply precomputed per-function interval states;
    with ``use_intervals=False`` the interval-derived refinements
    (range loop bounds, body-trip caps, path-sensitive collapse) are
    disabled and the pre-interval bound is reproduced.
    """
    entry = entry or program.entry
    result = WcetResult(program=program.name)
    consts = dict(consts) if consts else {}
    ranges = dict(ranges) if ranges else {}
    cfgs: Dict[str, CFG] = {}

    def analysis_for(name: str) -> ConstantStates:
        cached = consts.get(name)
        if cached is None:
            cfg = cfgs.setdefault(name, build_cfg(program.functions[name]))
            cached = constant_states(program.functions[name], cfg=cfg)
            consts[name] = cached
        return cached

    def ranges_for(name: str) -> Optional[IntervalStates]:
        if not use_intervals:
            return None
        cached = ranges.get(name)
        if cached is None:
            cfg = cfgs.setdefault(name, build_cfg(program.functions[name]))
            cached = interval_states(program.functions[name], cfg=cfg,
                                     program=program)
            ranges[name] = cached
        return cached

    # Callees-first order over the call graph; recursion is an error.
    order: List[str] = []
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(name: str) -> bool:
        """Returns False if a cycle goes through ``name``."""
        if name not in program.functions:
            return True  # Structural validation reports the bad call.
        mark = state.get(name)
        if mark == 2:
            return True
        if mark == 1:
            return False
        state[name] = 1
        ok = True
        for callee in program.functions[name].called_functions():
            if not visit(callee):
                ok = False
                if callee not in result.function_cycles:
                    result.function_cycles[callee] = None
        state[name] = 2
        order.append(name)
        if not ok:
            result.findings.append(Finding(
                severity=Severity.ERROR,
                code="recursion",
                message=f"recursive call cycle through {name!r}; "
                        "WCET is unbounded",
                function=name,
            ))
            result.function_cycles[name] = None
        return ok

    visit(entry)

    for name in order:
        if result.function_cycles.get(name, 0) is None:
            continue  # Part of a recursion cycle.
        cfg = cfgs.setdefault(name, build_cfg(program.functions[name]))
        cycles, loops, method = _function_wcet(
            program, name, cfg, analysis_for(name),
            result.function_cycles, result.findings, ranges_for(name),
        )
        result.function_cycles[name] = cycles
        result.function_method[name] = method
        if loops:
            result.loops[name] = loops

    result.total_cycles = result.function_cycles.get(entry)
    return result
