"""Lambda programs: functions, memory objects, and whole-program metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional

from .instructions import INSTRUCTION_BYTES, Instruction, Op, Region


class AccessMode(str, Enum):
    """Declared access pattern of a memory object (paper §4, point 2)."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"


@dataclass
class MemoryObject:
    """A named object in the lambda's flat virtual address space.

    ``hot`` is the user pragma from the paper (§4.2.1-D2): a hint that
    the object is accessed frequently and deserves close memory.
    ``region`` starts FLAT; memory stratification assigns a real region.
    """

    name: str
    size_bytes: int
    access: AccessMode = AccessMode.READ_WRITE
    hot: bool = False
    region: Region = Region.FLAT

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"object {self.name!r} must have positive size")


@dataclass
class Function:
    """A named sequence of instructions (a lambda body or helper)."""

    name: str
    body: List[Instruction] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        """Real instructions only (labels are assembler fictions)."""
        return sum(1 for instruction in self.body if instruction.is_real)

    def labels(self) -> Dict[str, int]:
        """Map from label name to body index."""
        return {
            instruction.args[0]: index
            for index, instruction in enumerate(self.body)
            if instruction.op is Op.LABEL
        }

    def called_functions(self) -> List[str]:
        return [
            instruction.args[0]
            for instruction in self.body
            if instruction.op is Op.CALL
        ]


class LambdaProgram:
    """One lambda: an entry function, helpers, and memory objects.

    This is the compiled form of one Micro-C top-level function
    (Listing 1/2 in the paper) together with its global objects.
    """

    def __init__(
        self,
        name: str,
        functions: Optional[Iterable[Function]] = None,
        objects: Optional[Iterable[MemoryObject]] = None,
        entry: Optional[str] = None,
        headers_used: Optional[Iterable[str]] = None,
        scratch_registers: Optional[Iterable[str]] = None,
    ) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        for function in functions or ():
            self.add_function(function)
        self.objects: Dict[str, MemoryObject] = {}
        for obj in objects or ():
            self.add_object(obj)
        self.entry = entry or name
        #: Header types this lambda touches; used by the framework to
        #: auto-generate the parser (paper contribution #3).
        self.headers_used: List[str] = list(headers_used or [])
        #: Registers the author declares as scratch: their values are
        #: never meaningful across reads, so the static verifier skips
        #: dead-store/uninitialized-read findings for them (e.g. the
        #: filler registers of coalescable padding).
        self.scratch_registers: FrozenSet[str] = frozenset(
            scratch_registers or ()
        )

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def add_object(self, obj: MemoryObject) -> None:
        if obj.name in self.objects:
            raise ValueError(f"duplicate object {obj.name!r}")
        self.objects[obj.name] = obj

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"{self.name!r} has no function {name!r}") from None

    def object(self, name: str) -> MemoryObject:
        try:
            return self.objects[name]
        except KeyError:
            raise KeyError(f"{self.name!r} has no object {name!r}") from None

    @property
    def instruction_count(self) -> int:
        return sum(f.instruction_count for f in self.functions.values())

    @property
    def code_bytes(self) -> int:
        return self.instruction_count * INSTRUCTION_BYTES

    @property
    def data_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.objects.values())

    def copy(self) -> "LambdaProgram":
        """Deep copy (instructions are immutable and shared)."""
        clone = LambdaProgram(self.name, entry=self.entry,
                              headers_used=list(self.headers_used),
                              scratch_registers=self.scratch_registers)
        for function in self.functions.values():
            clone.add_function(Function(function.name, list(function.body)))
        for obj in self.objects.values():
            clone.add_object(
                MemoryObject(obj.name, obj.size_bytes, obj.access, obj.hot, obj.region)
            )
        return clone

    def validate(self) -> None:
        """Check intra-program references (calls, labels, objects)."""
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} not defined")
        for function in self.functions.values():
            labels = function.labels()
            for instruction in function.body:
                if instruction.op is Op.CALL:
                    callee = instruction.args[0]
                    if callee not in self.functions:
                        raise ValueError(
                            f"{function.name!r} calls undefined {callee!r}"
                        )
                if instruction.op in (Op.JMP, Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
                    label = instruction.args[-1]
                    if label not in labels:
                        raise ValueError(
                            f"{function.name!r} jumps to undefined label {label!r}"
                        )
                for operand in instruction.args:
                    if (
                        isinstance(operand, tuple)
                        and len(operand) == 3
                        and operand[0] == "mem"
                        and operand[1] not in self.objects
                    ):
                        raise ValueError(
                            f"{function.name!r} references undefined object "
                            f"{operand[1]!r}"
                        )

    def __repr__(self) -> str:
        return (
            f"<LambdaProgram {self.name!r} funcs={len(self.functions)} "
            f"instrs={self.instruction_count} objects={len(self.objects)}>"
        )
