"""Pre-decoded fast execution engine for lambda programs.

The reference :class:`~repro.isa.interpreter.Interpreter` re-decodes
every instruction on every execution: a ~100-branch if/elif chain plus
per-operand ``isinstance`` dispatch. At paper scale (millions of
requests through the simulated NIC) that decode overhead, not the model,
dominates wall-clock time.

This module compiles a :class:`~repro.isa.program.LambdaProgram` once
into a flat table of per-instruction closures — classic threaded code:

* every function body is flattened into one global code array (labels
  resolved to indices, an implicit-return slot appended per function);
* every operand is resolved at compile time into a direct register /
  immediate / header / metadata accessor, so the hot loop never asks
  "what kind of operand is this?";
* cycle costs (base + memory-region access charges) are folded into
  per-closure constants.

The engine is **cycle-exact and verdict-identical** to the reference
interpreter by construction: each closure replicates the reference
semantics — including evaluation order, error messages, region-access
accounting, and the step limit — and the differential test suite
(``tests/isa/test_fastpath.py``) proves it on every registered workload.
The reference interpreter remains the executable specification.

Compiled code additionally tracks whether an execution wrote persistent
memory (``STORE``/``STORED``/``MEMCPY``/memory-writing intrinsics); the
NIC's execution memo cache uses that signal for invalidation.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .instructions import (
    BASE_CYCLES,
    Instruction,
    Op,
    REGION_ACCESS_CYCLES,
    is_register,
)
from .interpreter import (
    BULK_BURST_BYTES,
    DEFAULT_STEP_LIMIT,
    EmittedPacket,
    ExecutionError,
    ExecutionResult,
    Machine,
    VERDICT_DROP,
    VERDICT_FALLTHROUGH,
    VERDICT_FORWARD,
    VERDICT_TO_HOST,
    _INTRINSICS,
    intrinsic_writes_memory,
)
from .program import LambdaProgram

#: Sentinel returned by a step closure to stop the dispatch loop.
_STOP = -1


@dataclass
class CompileCacheStats:
    """Compile-cache counters for one engine tier.

    ``fallbacks`` counts programs the tier could not lower (only the
    JIT tier ever falls back; for the fast path it stays zero).
    """

    hits: int = 0       # lookups answered by a live compilation
    misses: int = 0     # compilations (first-time or staleness recompiles)
    fallbacks: int = 0  # programs this tier could not lower

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

#: A step closure: mutates the state, returns the next code index.
StepFn = Callable[["FastState"], int]


class FastState(Machine):
    """Machine state plus the accounting the reference loop kept in
    local variables.

    Subclassing :class:`Machine` keeps intrinsics working unchanged —
    they receive this state object and use the same ``read`` /
    ``memory`` / ``meta`` API as under the reference interpreter.
    """

    def __init__(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]],
        meta: Optional[Dict[str, Any]],
        memory: Optional[Dict[str, bytearray]],
        step_limit: int,
    ) -> None:
        super().__init__(program, headers, meta, memory)
        self.cycles = 0
        self.executed = 0
        self.region_accesses: Dict[Any, int] = {}
        self.verdict = VERDICT_FALLTHROUGH
        self.return_value: Any = None
        self.stack: List[int] = []
        self.step_limit = step_limit
        #: Set by store/memcpy/memory-writing-intrinsic closures; the
        #: memo cache treats such executions as invalidation points.
        self.wrote_memory = False


def _raise_step_limit(st: FastState) -> None:
    raise ExecutionError(
        f"step limit {st.step_limit} exceeded in "
        f"{st.program.name!r} (runaway lambda?)"
    )


# -- operand pre-resolution --------------------------------------------------


def _compile_reader(operand: Any) -> Callable[[FastState], Any]:
    """Resolve an operand into a direct accessor closure.

    Mirrors :meth:`Machine.read` — including its dispatch order and its
    error behaviour for unreadable operands, which is deferred to
    execution time so compiled programs fail exactly like interpreted
    ones.
    """
    if is_register(operand):
        def read_reg(st: FastState, _n: str = operand) -> Any:
            return st.registers[_n]
        return read_reg
    if isinstance(operand, (int, float)):
        def read_imm(st: FastState, _v: Any = operand) -> Any:
            return _v
        return read_imm
    if isinstance(operand, str):
        # Non-register strings are literal values (route names etc.).
        def read_lit(st: FastState, _v: str = operand) -> Any:
            return _v
        return read_lit
    if isinstance(operand, tuple):
        kind = operand[0]
        if kind == "hdr":
            _header, _field = operand[1], operand[2]

            def read_hdr(st: FastState) -> Any:
                try:
                    return st.headers[_header][_field]
                except KeyError:
                    raise ExecutionError(
                        f"header field {_header}.{_field} not present"
                    ) from None
            return read_hdr
        if kind == "meta":
            _key = operand[1]

            def read_meta(st: FastState) -> Any:
                return st.meta.get(_key, 0)
            return read_meta

    def read_bad(st: FastState, _o: Any = operand) -> Any:
        raise ExecutionError(f"cannot read operand {_o!r}")
    return read_bad


def _compile_writer(operand: Any) -> Callable[[FastState, Any], None]:
    """Resolve a destination operand (must be a register) once."""
    if is_register(operand):
        def write_reg(st: FastState, value: Any, _n: str = operand) -> None:
            st.registers[_n] = value
        return write_reg

    def write_bad(st: FastState, value: Any, _o: Any = operand) -> None:
        raise ExecutionError(f"destination {_o!r} is not a register")
    return write_bad


def _operand_const(operand: Any) -> Tuple[bool, Any]:
    """(is_plain_constant, value) — for ALU/branch specialisation."""
    if is_register(operand):
        return False, None
    if isinstance(operand, (int, float)) or (
        isinstance(operand, str) and not is_register(operand)
    ):
        return True, operand
    return False, None


_ALU_FNS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHR: lambda a, b: a >> b,
    Op.MIN: lambda a, b: min(a, b),
    Op.MAX: lambda a, b: max(a, b),
}

_BRANCH_FNS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}


def program_signature(program: LambdaProgram) -> Tuple:
    """Cheap structural fingerprint used to detect stale compilations.

    Catches the mutations that actually occur in this codebase —
    optimisation passes changing function bodies and memory
    stratification moving objects between regions. (In-place
    same-length instruction surgery is not detected; recompile
    explicitly after such edits.)
    """
    return (
        tuple((name, len(fn.body)) for name, fn in program.functions.items()),
        tuple((name, obj.region) for name, obj in program.objects.items()),
        program.entry,
    )


class CompiledProgram:
    """A lambda program pre-decoded into a flat closure table."""

    def __init__(self, program: LambdaProgram) -> None:
        self.program = program
        self.signature = program_signature(program)
        self.code: List[StepFn] = []
        #: Function name -> index of its first slot in ``code``.
        self.offsets: Dict[str, int] = {}
        self._compile()

    # -- layout ------------------------------------------------------------

    def entry_offset(self, name: str) -> int:
        try:
            return self.offsets[name]
        except KeyError:
            raise KeyError(
                f"{self.program.name!r} has no function {name!r}"
            ) from None

    def _compile(self) -> None:
        program = self.program
        # Pass 1: lay out every function (real instructions + one
        # implicit-return slot each) so calls resolve to constants.
        base = 0
        for name, fn in program.functions.items():
            self.offsets[name] = base
            base += sum(
                1 for instruction in fn.body if instruction.op is not Op.LABEL
            ) + 1
        # Pass 2: compile bodies.
        for name, fn in program.functions.items():
            self._compile_function(fn, self.offsets[name])

    def _compile_function(self, fn, base: int) -> None:
        body = fn.body
        labels = fn.labels()
        # Map every body position (plus the one-past-the-end position)
        # to its global slot; labels collapse onto the next real slot.
        global_of: List[int] = []
        slot = base
        for instruction in body:
            global_of.append(slot)
            if instruction.op is not Op.LABEL:
                slot += 1
        global_of.append(slot)  # implicit return slot

        code = self.code
        for index, instruction in enumerate(body):
            if instruction.op is Op.LABEL:
                continue
            code.append(
                self._compile_instruction(
                    instruction,
                    nxt=global_of[index + 1],
                    labels={
                        label: global_of[target]
                        for label, target in labels.items()
                    },
                )
            )
        # The reference loop checks the step limit before every body
        # position, labels included. A function ending in a label
        # therefore checks once more before falling off the end; one
        # ending in a real instruction does not.
        if body and body[-1].op is Op.LABEL:
            code.append(_checked_implicit_return)
        else:
            code.append(_implicit_return)
        assert len(code) == slot + 1

    # -- per-instruction compilation --------------------------------------

    def _compile_instruction(
        self, instruction: Instruction, nxt: int, labels: Dict[str, int]
    ) -> StepFn:
        op = instruction.op
        args = instruction.args
        base = BASE_CYCLES[op]
        program = self.program

        if op in _ALU_FNS:
            return _compile_alu(op, args, base, nxt)
        if op is Op.MOV:
            return _compile_mov(args, base, nxt)
        if op is Op.JMP:
            return _compile_jmp(args, labels, base, nxt)
        if op in _BRANCH_FNS:
            return _compile_branch(op, args, labels, base, nxt)
        if op is Op.CALL:
            return self._compile_call(args, base, nxt)
        if op is Op.RET:
            return _compile_ret(args, base)
        if op is Op.HALT:
            def halt(st: FastState) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                return _STOP
            return halt
        if op is Op.NOP:
            def nop(st: FastState) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                return nxt
            return nop
        if op is Op.RESOLVE:
            return _compile_resolve(args, base, nxt)
        if op in (Op.LOAD, Op.LOADD):
            return _compile_load(program, args, base, nxt)
        if op in (Op.STORE, Op.STORED):
            return _compile_store(program, op, args, base, nxt)
        if op is Op.MEMCPY:
            return _compile_memcpy(program, args, base, nxt)
        if op is Op.HLOAD:
            return _compile_hload(args, base, nxt)
        if op is Op.HSTORE:
            return _compile_hstore(args, base, nxt)
        if op is Op.MLOAD:
            return _compile_mload(args, base, nxt)
        if op is Op.MSTORE:
            return _compile_mstore(args, base, nxt)
        if op is Op.EMIT:
            def emit(st: FastState) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                st.emitted.append(
                    EmittedPacket(
                        headers={
                            k: dict(v) for k, v in st.headers.items()
                        },
                        meta=dict(st.meta),
                        payload=st.response_payload,
                    )
                )
                return nxt
            return emit
        if op in (Op.FORWARD, Op.DROP, Op.TO_HOST):
            verdict = {
                Op.FORWARD: VERDICT_FORWARD,
                Op.DROP: VERDICT_DROP,
                Op.TO_HOST: VERDICT_TO_HOST,
            }[op]

            def packet_verdict(st: FastState) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                st.verdict = verdict
                return _STOP
            return packet_verdict
        if op in (Op.HASH, Op.CRC):
            return _compile_hash(op, args, base, nxt)
        if op is Op.INTRINSIC:
            return _compile_intrinsic(args, base, nxt)

        def unhandled(st: FastState, _op: Op = op) -> int:
            raise ExecutionError(f"unhandled opcode {_op!r}")
        return unhandled  # pragma: no cover - every op is handled above

    def _compile_call(self, args: Tuple[Any, ...], base: int, nxt: int) -> StepFn:
        callee = args[0]
        target = self.offsets.get(callee)
        if target is None:
            program_name = self.program.name

            def call_missing(st: FastState) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                raise KeyError(
                    f"{program_name!r} has no function {callee!r}"
                )
            return call_missing

        def call(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            st.stack.append(nxt)
            return target
        return call


def _implicit_return(st: FastState) -> int:
    """Fell off the end of a function: free return (no cycles/steps)."""
    stack = st.stack
    if stack:
        return stack.pop()
    return _STOP


def _checked_implicit_return(st: FastState) -> int:
    """Implicit return reached through a trailing label.

    The reference interpreter tests the step limit at the label before
    discovering the function end, so this slot must do the same.
    """
    if st.executed >= st.step_limit:
        _raise_step_limit(st)
    stack = st.stack
    if stack:
        return stack.pop()
    return _STOP


def _compile_alu(op: Op, args: Tuple[Any, ...], base: int, nxt: int) -> StepFn:
    fn = _ALU_FNS[op]
    dst = args[0]
    a, b = args[1], (args[2] if len(args) > 2 else None)
    a_const, a_value = _operand_const(a)
    b_const, b_value = _operand_const(b) if len(args) > 2 else (True, None)
    # Specialise the overwhelmingly common register-destination forms:
    # the straight-line padding in every workload is reg op reg/imm.
    if is_register(dst):
        if not a_const and is_register(a) and b_const:
            def alu_rc(st: FastState, _d=dst, _a=a, _b=b_value) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                registers = st.registers
                registers[_d] = fn(registers[_a], _b)
                return nxt
            return alu_rc
        if not a_const and is_register(a) and not b_const and is_register(b):
            def alu_rr(st: FastState, _d=dst, _a=a, _b=b) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                registers = st.registers
                registers[_d] = fn(registers[_a], registers[_b])
                return nxt
            return alu_rr
    read_a = _compile_reader(a)
    read_b = _compile_reader(b) if len(args) > 2 else (lambda st: None)
    write = _compile_writer(dst)

    def alu(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        write(st, fn(read_a(st), read_b(st)))
        return nxt
    return alu


def _compile_mov(args: Tuple[Any, ...], base: int, nxt: int) -> StepFn:
    dst, src = args[0], args[1]
    if is_register(dst):
        if is_register(src):
            def mov_rr(st: FastState, _d=dst, _s=src) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                registers = st.registers
                registers[_d] = registers[_s]
                return nxt
            return mov_rr
        const, value = _operand_const(src)
        if const:
            def mov_rc(st: FastState, _d=dst, _v=value) -> int:
                if st.executed >= st.step_limit:
                    _raise_step_limit(st)
                st.executed += 1
                st.cycles += base
                st.registers[_d] = _v
                return nxt
            return mov_rc
    read = _compile_reader(src)
    write = _compile_writer(dst)

    def mov(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        write(st, read(st))
        return nxt
    return mov


def _compile_jmp(args, labels: Dict[str, int], base: int, nxt: int) -> StepFn:
    label = args[0]
    target = labels.get(label)
    if target is None:
        def jmp_missing(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            raise KeyError(label)
        return jmp_missing

    def jmp(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        return target
    return jmp


def _compile_branch(op: Op, args, labels: Dict[str, int],
                    base: int, nxt: int) -> StepFn:
    fn = _BRANCH_FNS[op]
    a, b, label = args[0], args[1], args[2]
    target = labels.get(label)
    if target is None:
        read_a = _compile_reader(a)
        read_b = _compile_reader(b)

        def branch_missing(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            if fn(read_a(st), read_b(st)):
                raise KeyError(label)
            return nxt
        return branch_missing
    a_const, a_value = _operand_const(a)
    b_const, b_value = _operand_const(b)
    # The routing if-chains compiled from URL/key maps are reg-vs-imm.
    if not a_const and is_register(a) and b_const:
        def branch_rc(st: FastState, _a=a, _b=b_value) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            if fn(st.registers[_a], _b):
                return target
            return nxt
        return branch_rc
    read_a = _compile_reader(a)
    read_b = _compile_reader(b)

    def branch(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        if fn(read_a(st), read_b(st)):
            return target
        return nxt
    return branch


def _compile_ret(args: Tuple[Any, ...], base: int) -> StepFn:
    if args:
        read = _compile_reader(args[0])

        def ret_value(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            value = read(st)
            st.return_value = value
            st.registers["r0"] = value
            stack = st.stack
            if stack:
                return stack.pop()
            return _STOP
        return ret_value

    def ret(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        stack = st.stack
        if stack:
            return stack.pop()
        return _STOP
    return ret


def _compile_resolve(args: Tuple[Any, ...], base: int, nxt: int) -> StepFn:
    _, obj, offset = args[1]
    read_offset = _compile_reader(offset)
    write = _compile_writer(args[0])

    def resolve(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        write(st, ("addr", obj, read_offset(st)))
        return nxt
    return resolve


def _region_of(program: LambdaProgram, obj: str):
    """Compile-time region lookup; defers unknown objects to runtime."""
    if obj in program.objects:
        return program.objects[obj].region
    return None


def _compile_load(program: LambdaProgram, args, base: int, nxt: int) -> StepFn:
    _, obj, offset = args[-1]
    read_offset = _compile_reader(offset)
    write = _compile_writer(args[0])
    region = _region_of(program, obj)
    if region is None:
        program_name = program.name

        def load_foreign(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            read_offset(st)
            # The reference charges the access only after resolving the
            # object's region, which raises for undeclared objects.
            raise KeyError(f"{program_name!r} has no object {obj!r}")
        return load_foreign
    access = REGION_ACCESS_CYCLES[region]
    total = base + access

    def load(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        offset_value = read_offset(st)
        accesses = st.region_accesses
        accesses[region] = accesses.get(region, 0) + 1
        st.cycles += total
        write(st, st.load_word(obj, offset_value))
        return nxt
    return load


def _compile_store(program: LambdaProgram, op: Op, args,
                   base: int, nxt: int) -> StepFn:
    memref = args[-2] if op is Op.STORE else args[0]
    _, obj, offset = memref
    read_offset = _compile_reader(offset)
    read_value = _compile_reader(args[-1])
    region = _region_of(program, obj)
    if region is None:
        program_name = program.name

        def store_foreign(st: FastState) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            read_offset(st)
            raise KeyError(f"{program_name!r} has no object {obj!r}")
        return store_foreign
    access = REGION_ACCESS_CYCLES[region]
    total = base + access

    def store(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        offset_value = read_offset(st)
        accesses = st.region_accesses
        accesses[region] = accesses.get(region, 0) + 1
        st.cycles += total
        st.store_word(obj, offset_value, read_value(st))
        st.wrote_memory = True
        return nxt
    return store


def _compile_memcpy(program: LambdaProgram, args, base: int, nxt: int) -> StepFn:
    dst_ref, src_ref, length = args
    _, dst_obj, dst_off = dst_ref
    _, src_obj, src_off = src_ref
    read_length = _compile_reader(length)
    read_dst_off = _compile_reader(dst_off)
    read_src_off = _compile_reader(src_off)
    src_region = _region_of(program, src_obj)
    dst_region = _region_of(program, dst_obj)
    program_name = program.name
    ceil = math.ceil

    def memcpy(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        n = read_length(st)
        dst_off_v = read_dst_off(st)
        src_off_v = read_src_off(st)
        bursts = max(1, ceil(n / BULK_BURST_BYTES))
        if src_region is None:
            raise KeyError(f"{program_name!r} has no object {src_obj!r}")
        accesses = st.region_accesses
        accesses[src_region] = accesses.get(src_region, 0) + bursts
        st.cycles += REGION_ACCESS_CYCLES[src_region] * bursts
        if dst_region is None:
            raise KeyError(f"{program_name!r} has no object {dst_obj!r}")
        accesses[dst_region] = accesses.get(dst_region, 0) + bursts
        st.cycles += REGION_ACCESS_CYCLES[dst_region] * bursts
        src_bytes = st._object_bytes(src_obj)
        dst_bytes = st._object_bytes(dst_obj)
        if src_off_v + n > len(src_bytes) or dst_off_v + n > len(dst_bytes):
            raise ExecutionError("memcpy out of bounds")
        dst_bytes[dst_off_v:dst_off_v + n] = src_bytes[src_off_v:src_off_v + n]
        st.wrote_memory = True
        return nxt
    return memcpy


def _compile_hload(args, base: int, nxt: int) -> StepFn:
    _, header, field_name = args[1]
    write = _compile_writer(args[0])

    def hload(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        try:
            value = st.headers[header][field_name]
        except KeyError:
            raise ExecutionError(
                f"header field {header}.{field_name} not present"
            ) from None
        write(st, value)
        return nxt
    return hload


def _compile_hstore(args, base: int, nxt: int) -> StepFn:
    _, header, field_name = args[0]
    read = _compile_reader(args[1])

    def hstore(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        st.headers.setdefault(header, {})[field_name] = read(st)
        return nxt
    return hstore


def _compile_mload(args, base: int, nxt: int) -> StepFn:
    key = args[1][1]
    dst = args[0]
    if is_register(dst):
        def mload_reg(st: FastState, _d=dst) -> int:
            if st.executed >= st.step_limit:
                _raise_step_limit(st)
            st.executed += 1
            st.cycles += base
            st.registers[_d] = st.meta.get(key, 0)
            return nxt
        return mload_reg
    write = _compile_writer(dst)

    def mload(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        write(st, st.meta.get(key, 0))
        return nxt
    return mload


def _compile_mstore(args, base: int, nxt: int) -> StepFn:
    key = args[0][1]
    read = _compile_reader(args[1])

    def mstore(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        st.meta[key] = read(st)
        return nxt
    return mstore


def _compile_hash(op: Op, args, base: int, nxt: int) -> StepFn:
    opcode_value = op.value
    read = _compile_reader(args[1])
    write = _compile_writer(args[0])

    def hash_op(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        write(st, hash((opcode_value, read(st))) & 0xFFFFFFFF)
        return nxt
    return hash_op


def _compile_intrinsic(args, base: int, nxt: int) -> StepFn:
    name = args[0]
    rest = args[1:]

    def intrinsic(st: FastState) -> int:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += base
        fn = _INTRINSICS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown intrinsic {name!r}")
        st.cycles += fn(st, rest)
        if intrinsic_writes_memory(name):
            st.wrote_memory = True
        return nxt
    return intrinsic


# -- the engine --------------------------------------------------------------


def compile_program(program: LambdaProgram) -> CompiledProgram:
    """Pre-decode ``program`` into a threaded-code closure table."""
    return CompiledProgram(program)


class FastInterpreter:
    """Drop-in replacement for :class:`Interpreter` using pre-decoded
    threaded code.

    Compilations are cached per program (weakly keyed, so discarded
    programs free their code tables) and guarded by a structural
    signature: optimiser passes or memory stratification that change a
    program after compilation trigger a transparent recompile.
    """

    def __init__(self, clock_hz: float = 633e6,
                 step_limit: int = DEFAULT_STEP_LIMIT) -> None:
        self.clock_hz = clock_hz
        self.step_limit = step_limit
        self.stats = CompileCacheStats()
        self._compiled: "weakref.WeakKeyDictionary[LambdaProgram, CompiledProgram]" = (
            weakref.WeakKeyDictionary()
        )

    def compiled_for(self, program: LambdaProgram) -> CompiledProgram:
        """The cached compilation of ``program`` (recompiled if stale)."""
        compiled = self._compiled.get(program)
        if compiled is None or compiled.signature != program_signature(program):
            self.stats.misses += 1
            compiled = CompiledProgram(program)
            self._compiled[program] = compiled
        else:
            self.stats.hits += 1
        return compiled

    def execute(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
        entry: Optional[str] = None,
    ) -> Tuple[ExecutionResult, bool]:
        """Run to completion; returns (result, wrote_persistent_memory)."""
        compiled = self.compiled_for(program)
        st = FastState(program, headers, meta, memory, self.step_limit)
        code = compiled.code
        pc = compiled.entry_offset(entry or program.entry)
        while pc >= 0:
            pc = code[pc](st)
        result = ExecutionResult(
            verdict=st.verdict,
            return_value=st.return_value,
            cycles=st.cycles,
            instructions_executed=st.executed,
            region_accesses=st.region_accesses,
            emitted=st.emitted,
            headers=st.headers,
            meta=st.meta,
            response_payload=st.response_payload,
        )
        return result, st.wrote_memory

    def run(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
        entry: Optional[str] = None,
    ) -> ExecutionResult:
        """Interpreter-compatible entry point."""
        result, _ = self.execute(program, headers, meta, memory, entry)
        return result
