"""Fluent construction of lambda programs.

The builder is the "Micro-C compiler front-end" of the reproduction:
workload authors use it the way the paper's users write Micro-C, and it
emits the naive (unoptimised) IR — e.g. every memory access goes through
the flat address space via an explicit ``resolve`` instruction, exactly
what the memory-stratification pass later improves.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from .instructions import Instruction, Op, ins
from .program import AccessMode, Function, LambdaProgram, MemoryObject


class FunctionBuilder:
    """Accumulates instructions for one function."""

    def __init__(self, program_builder: "ProgramBuilder", name: str) -> None:
        self._program_builder = program_builder
        self.name = name
        self._body: List[Instruction] = []
        self._label_counter = itertools.count(1)

    # -- raw emission -------------------------------------------------------

    def emit(self, op: Op, *args: Any) -> "FunctionBuilder":
        self._body.append(ins(op, *args))
        return self

    def raw(self, instructions: List[Instruction]) -> "FunctionBuilder":
        self._body.extend(instructions)
        return self

    # -- ALU ----------------------------------------------------------------

    def mov(self, dst: str, src: Any) -> "FunctionBuilder":
        return self.emit(Op.MOV, dst, src)

    def add(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.ADD, dst, a, b)

    def sub(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.SUB, dst, a, b)

    def mul(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.MUL, dst, a, b)

    def band(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.AND, dst, a, b)

    def bor(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.OR, dst, a, b)

    def xor(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.XOR, dst, a, b)

    def shr(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.SHR, dst, a, b)

    def shl(self, dst: str, a: Any, b: Any) -> "FunctionBuilder":
        return self.emit(Op.SHL, dst, a, b)

    # -- control flow ---------------------------------------------------------

    def fresh_label(self, hint: str = "L") -> str:
        return f"{self.name}_{hint}{next(self._label_counter)}"

    def label(self, name: str) -> "FunctionBuilder":
        return self.emit(Op.LABEL, name)

    def jmp(self, label: str) -> "FunctionBuilder":
        return self.emit(Op.JMP, label)

    def beq(self, a: Any, b: Any, label: str) -> "FunctionBuilder":
        return self.emit(Op.BEQ, a, b, label)

    def bne(self, a: Any, b: Any, label: str) -> "FunctionBuilder":
        return self.emit(Op.BNE, a, b, label)

    def blt(self, a: Any, b: Any, label: str) -> "FunctionBuilder":
        return self.emit(Op.BLT, a, b, label)

    def bge(self, a: Any, b: Any, label: str) -> "FunctionBuilder":
        return self.emit(Op.BGE, a, b, label)

    def call(self, function_name: str) -> "FunctionBuilder":
        return self.emit(Op.CALL, function_name)

    def ret(self, value: Any = None) -> "FunctionBuilder":
        if value is None:
            return self.emit(Op.RET)
        return self.emit(Op.RET, value)

    # -- memory (always flat at build time) -----------------------------------

    def load(self, dst: str, obj: str, offset: Any = 0,
             addr_reg: str = "r14") -> "FunctionBuilder":
        """Flat-memory load: resolve + load (2 instructions, naive form)."""
        self.emit(Op.RESOLVE, addr_reg, ("mem", obj, offset))
        return self.emit(Op.LOAD, dst, addr_reg, ("mem", obj, offset))

    def store(self, obj: str, offset: Any, src: Any,
              addr_reg: str = "r14") -> "FunctionBuilder":
        """Flat-memory store: resolve + store (2 instructions, naive form)."""
        self.emit(Op.RESOLVE, addr_reg, ("mem", obj, offset))
        return self.emit(Op.STORE, addr_reg, ("mem", obj, offset), src)

    def memcpy(self, dst_obj: str, dst_off: Any, src_obj: str, src_off: Any,
               length: Any) -> "FunctionBuilder":
        return self.emit(
            Op.MEMCPY, ("mem", dst_obj, dst_off), ("mem", src_obj, src_off), length
        )

    # -- headers / metadata / packet -------------------------------------------

    def hload(self, dst: str, header: str, field_name: str) -> "FunctionBuilder":
        self._program_builder._note_header(header)
        return self.emit(Op.HLOAD, dst, ("hdr", header, field_name))

    def hstore(self, header: str, field_name: str, src: Any) -> "FunctionBuilder":
        self._program_builder._note_header(header)
        return self.emit(Op.HSTORE, ("hdr", header, field_name), src)

    def mload(self, dst: str, key: str) -> "FunctionBuilder":
        return self.emit(Op.MLOAD, dst, ("meta", key))

    def mstore(self, key: str, src: Any) -> "FunctionBuilder":
        return self.emit(Op.MSTORE, ("meta", key), src)

    def emit_packet(self) -> "FunctionBuilder":
        return self.emit(Op.EMIT)

    def forward(self) -> "FunctionBuilder":
        return self.emit(Op.FORWARD)

    def drop(self) -> "FunctionBuilder":
        return self.emit(Op.DROP)

    def to_host(self) -> "FunctionBuilder":
        return self.emit(Op.TO_HOST)

    def hash(self, dst: str, src: Any) -> "FunctionBuilder":
        return self.emit(Op.HASH, dst, src)

    def crc(self, dst: str, src: Any) -> "FunctionBuilder":
        return self.emit(Op.CRC, dst, src)

    def nop(self, count: int = 1) -> "FunctionBuilder":
        for _ in range(count):
            self.emit(Op.NOP)
        return self

    def build(self) -> Function:
        return Function(self.name, list(self._body))


class ProgramBuilder:
    """Builds a complete :class:`LambdaProgram`."""

    def __init__(self, name: str, entry: Optional[str] = None) -> None:
        self.name = name
        self.entry = entry or name
        self._functions: List[Function] = []
        self._objects: List[MemoryObject] = []
        self._headers: List[str] = []
        self._scratch: List[str] = []

    def _note_header(self, header: str) -> None:
        if header not in self._headers:
            self._headers.append(header)

    def function(self, name: str) -> FunctionBuilder:
        """Open a builder for a new function; call ``close`` to add it."""
        return FunctionBuilder(self, name)

    def close(self, function_builder: FunctionBuilder) -> "ProgramBuilder":
        self._functions.append(function_builder.build())
        return self

    def object(
        self,
        name: str,
        size_bytes: int,
        access: AccessMode = AccessMode.READ_WRITE,
        hot: bool = False,
    ) -> "ProgramBuilder":
        self._objects.append(MemoryObject(name, size_bytes, access, hot))
        return self

    def scratch(self, *registers: str) -> "ProgramBuilder":
        """Declare registers whose values nobody reads (verifier exempt)."""
        for register in registers:
            if register not in self._scratch:
                self._scratch.append(register)
        return self

    def build(self) -> LambdaProgram:
        program = LambdaProgram(
            self.name,
            functions=self._functions,
            objects=self._objects,
            entry=self.entry,
            headers_used=self._headers,
            scratch_registers=self._scratch,
        )
        program.validate()
        return program
