"""Lambda-IR -> native Python JIT: per-lambda source code generation.

The third (and fastest) execution tier. The reference
:class:`~repro.isa.interpreter.Interpreter` decodes every instruction on
every run; the :mod:`~repro.isa.fastpath` engine pre-decodes into
threaded-code closures but still pays one Python call, one step-limit
check, and several attribute lookups *per instruction*. This module
removes that last per-instruction overhead by compiling a
:class:`~repro.isa.program.LambdaProgram` into real Python source:

* one generated Python function per lambda IR function;
* basic blocks (from the verifier's :func:`~repro.isa.verify.build_cfg`)
  emitted as straight-line statements under a small integer block
  dispatcher, with registers lowered to Python locals;
* the verifier's constant propagation
  (:func:`~repro.isa.verify.constant_states`) seeds the lowering:
  ALU results and branch directions that are statically known fold
  into constants at codegen time;
* cycle costs and the step-limit check folded to *one* constant and
  *one* comparison per straight-line segment instead of per
  instruction, with a slow-path trip executor that replays the segment
  instruction-by-instruction when an execution actually crosses the
  limit — so the raise happens at the exact instruction, after the
  exact persistent-memory side effects, with the exact message;
* the source is ``compile()``d once per program and cached next to the
  fastpath compile cache (weakly keyed, signature-guarded).

Semantics are **cycle-exact and verdict-identical** to the reference
interpreter — including error messages, region-access accounting,
persistent-memory-write tracking for the NIC's memo cache, and the step
limit — proven by the same differential harness the fastpath uses
(``tests/isa/test_jit.py`` plus the hypothesis fuzz suite).

Programs the JIT cannot lower (unknown opcodes, CFGs the verifier's
fixpoint cannot settle) transparently fall back to the fastpath engine;
fallbacks are counted in :class:`CompileCacheStats` so the tier split
stays observable.
"""

from __future__ import annotations

import math
import weakref
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from .instructions import (
    BASE_CYCLES,
    Instruction,
    Op,
    REGION_ACCESS_CYCLES,
    is_register,
)
from .fastpath import (
    CompileCacheStats,
    FastInterpreter,
    FastState,
    program_signature,
)
from .interpreter import (
    BULK_BURST_BYTES,
    DEFAULT_STEP_LIMIT,
    EmittedPacket,
    ExecutionError,
    ExecutionResult,
    _ALU_OPS,
    _BRANCH_OPS,
    _INTRINSICS,
    intrinsic_writes_memory,
)
from .program import Function, LambdaProgram
from .verify import NAC, build_cfg, constant_states
from .verify.cfg import BRANCH_OPS, MACHINE_TERMINATOR_OPS
from .verify.intervals import interval_states


class JitLoweringError(Exception):
    """The program uses a construct the JIT cannot lower (the engine
    falls back to the fastpath tier for such programs)."""


#: Block id sentinel meaning "fall off the end of the function".
_IMPLICIT = -1

#: Straight-line opcodes the generated code and the trip executor
#: handle. Anything outside this set (plus control flow) is a lowering
#: failure, never a silent semantic change.
_STRAIGHTLINE_OPS = frozenset(_ALU_OPS) | frozenset({
    Op.MOV, Op.NOP, Op.RESOLVE, Op.LOAD, Op.LOADD, Op.STORE, Op.STORED,
    Op.MEMCPY, Op.HLOAD, Op.HSTORE, Op.MLOAD, Op.MSTORE, Op.EMIT,
    Op.HASH, Op.CRC, Op.INTRINSIC,
})

_CONTROL_OPS = frozenset(BRANCH_OPS) | frozenset({
    Op.JMP, Op.CALL, Op.RET, Op.HALT, Op.FORWARD, Op.DROP, Op.TO_HOST,
    Op.LABEL,
})

#: Python expression templates for the ALU ops; operand order matches
#: the reference lambdas exactly (TypeError messages depend on it).
_ALU_TEMPLATES = {
    Op.ADD: "({a} + {b})",
    Op.SUB: "({a} - {b})",
    Op.MUL: "({a} * {b})",
    Op.AND: "({a} & {b})",
    Op.OR: "({a} | {b})",
    Op.XOR: "({a} ^ {b})",
    Op.SHL: "({a} << {b})",
    Op.SHR: "({a} >> {b})",
    Op.MIN: "min({a}, {b})",
    Op.MAX: "max({a}, {b})",
}

_BRANCH_TEMPLATES = {
    Op.BEQ: "({a} == {b})",
    Op.BNE: "({a} != {b})",
    Op.BLT: "({a} < {b})",
    Op.BGE: "({a} >= {b})",
}

_VERDICT_OPS = {
    Op.FORWARD: "forward",
    Op.DROP: "drop",
    Op.TO_HOST: "to_host",
}


# -- runtime helpers shared by all generated modules ---------------------------


def _raise_step_limit(st: FastState) -> None:
    raise ExecutionError(
        f"step limit {st.step_limit} exceeded in "
        f"{st.program.name!r} (runaway lambda?)"
    )


def _read_header(headers: Dict[str, Dict[str, Any]], header: str,
                 field_name: str) -> Any:
    try:
        return headers[header][field_name]
    except KeyError:
        raise ExecutionError(
            f"header field {header}.{field_name} not present"
        ) from None


def _bad_read(operand: Any) -> Any:
    raise ExecutionError(f"cannot read operand {operand!r}")


def _bad_destination(operand: Any) -> None:
    raise ExecutionError(f"destination {operand!r} is not a register")


def _charge(st: FastState, region: Any, words: int = 1) -> None:
    accesses = st.region_accesses
    accesses[region] = accesses.get(region, 0) + words
    st.cycles += REGION_ACCESS_CYCLES[region] * words


def _step_trip(st: FastState, instructions: Tuple[Instruction, ...]) -> None:
    """Per-instruction slow path for a segment that crosses the step limit.

    The generated fast path pre-checks ``executed + N > step_limit`` per
    segment; when that fires, the generated function spills its register
    locals and hands the *whole segment* here. This executor replays it
    with the reference interpreter's per-instruction accounting, so the
    step-limit error raises at the exact instruction — after the exact
    side effects of its predecessors — with the exact message.

    The pre-check guarantees the raise happens at or before the last
    instruction (checks precede execution), so control-flow terminators
    that may end a segment are never actually executed here.
    """
    for instruction in instructions:
        if st.executed >= st.step_limit:
            _raise_step_limit(st)
        st.executed += 1
        st.cycles += BASE_CYCLES[instruction.op]
        _execute_straightline(st, instruction)
    raise AssertionError("step-limit trip segment did not trip")


def _execute_straightline(st: FastState, instruction: Instruction) -> None:
    """Reference semantics for one non-control-flow instruction."""
    op = instruction.op
    args = instruction.args
    program = st.program
    if op in _ALU_OPS:
        a = st.read(args[1])
        b = st.read(args[2]) if len(args) > 2 else None
        st.write_register(args[0], _ALU_OPS[op](a, b))
    elif op is Op.MOV:
        st.write_register(args[0], st.read(args[1]))
    elif op is Op.NOP:
        pass
    elif op is Op.RESOLVE:
        _, obj, offset = args[1]
        st.write_register(args[0], ("addr", obj, st.read(offset)))
    elif op in (Op.LOAD, Op.LOADD):
        _, obj, offset = args[-1]
        offset_value = st.read(offset)
        _charge(st, program.object(obj).region)
        st.write_register(args[0], st.load_word(obj, offset_value))
    elif op in (Op.STORE, Op.STORED):
        memref = args[-2] if op is Op.STORE else args[0]
        _, obj, offset = memref
        offset_value = st.read(offset)
        _charge(st, program.object(obj).region)
        st.store_word(obj, offset_value, st.read(args[-1]))
        st.wrote_memory = True
    elif op is Op.MEMCPY:
        dst_ref, src_ref, length = args
        _, dst_obj, dst_off = dst_ref
        _, src_obj, src_off = src_ref
        n = st.read(length)
        dst_off_v = st.read(dst_off)
        src_off_v = st.read(src_off)
        bursts = max(1, math.ceil(n / BULK_BURST_BYTES))
        _charge(st, program.object(src_obj).region, bursts)
        _charge(st, program.object(dst_obj).region, bursts)
        src_bytes = st._object_bytes(src_obj)
        dst_bytes = st._object_bytes(dst_obj)
        if src_off_v + n > len(src_bytes) or dst_off_v + n > len(dst_bytes):
            raise ExecutionError("memcpy out of bounds")
        dst_bytes[dst_off_v:dst_off_v + n] = src_bytes[src_off_v:src_off_v + n]
        st.wrote_memory = True
    elif op is Op.HLOAD:
        _, header, field_name = args[1]
        st.write_register(args[0], st.read_header(header, field_name))
    elif op is Op.HSTORE:
        _, header, field_name = args[0]
        st.write_header(header, field_name, st.read(args[1]))
    elif op is Op.MLOAD:
        st.write_register(args[0], st.meta.get(args[1][1], 0))
    elif op is Op.MSTORE:
        st.meta[args[0][1]] = st.read(args[1])
    elif op is Op.EMIT:
        st.emitted.append(
            EmittedPacket(
                headers={k: dict(v) for k, v in st.headers.items()},
                meta=dict(st.meta),
                payload=st.response_payload,
            )
        )
    elif op in (Op.HASH, Op.CRC):
        value = st.read(args[1])
        st.write_register(args[0], hash((op.value, value)) & 0xFFFFFFFF)
    elif op is Op.INTRINSIC:
        name = args[0]
        fn = _INTRINSICS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown intrinsic {name!r}")
        st.cycles += fn(st, args[1:])
        if intrinsic_writes_memory(name):
            st.wrote_memory = True
    else:  # pragma: no cover - segments never execute control flow here
        raise AssertionError(f"control-flow op in step trip: {op!r}")


# -- codegen -------------------------------------------------------------------


def _used_registers(function: Function) -> List[str]:
    """Registers this function touches (lowered to Python locals).

    Includes registers nested inside memref offsets and intrinsic
    argument tuples; ``ret value`` also writes ``r0``.
    """
    used: set = set()

    def scan(value: Any) -> None:
        if is_register(value):
            used.add(value)
        elif isinstance(value, tuple):
            for item in value:
                scan(item)

    for instruction in function.body:
        for arg in instruction.args:
            scan(arg)
        if instruction.op is Op.RET and instruction.args:
            used.add("r0")
    return sorted(used, key=lambda name: int(name[1:]))


class _Emitter:
    """Indented line buffer for one generated module."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _FunctionLowering:
    """Lowers one IR function to one generated Python function."""

    def __init__(self, compiler: "JitProgram", name: str,
                 function: Function) -> None:
        self.compiler = compiler
        self.name = name
        self.function = function
        self.cfg = build_cfg(function)
        self.consts = constant_states(function, cfg=self.cfg)
        # Machine-guaranteed value ranges only (trust_declared=False):
        # the simulator lets callers place out-of-wire-range values in
        # headers, so elision decisions must not lean on declared
        # packet-format ranges.
        self.ranges = interval_states(function, cfg=self.cfg,
                                      program=compiler.program,
                                      trust_declared=False)
        self.labels = function.labels()
        self.used = _used_registers(function)
        self.out = compiler.out

    # -- small codegen utilities --------------------------------------------

    def const(self, value: Any) -> str:
        return self.compiler.const(value)

    def read_expr(self, index: int, operand: Any) -> str:
        """Python expression for :meth:`Machine.read` of ``operand``.

        Register reads become locals; when constant propagation proves
        the register's value at this body index, the constant is
        emitted instead (never changes the computed value — the
        lattice mirrors the interpreter's own evaluation).
        """
        if is_register(operand):
            known = self.consts.value_before(index, operand)
            if known is not NAC and isinstance(known, (int, float, str)):
                return self.const(known)
            return operand
        if isinstance(operand, (int, float, str)):
            # Immediates and non-register string literals.
            return self.const(operand)
        if isinstance(operand, tuple):
            kind = operand[0]
            if kind == "hdr":
                return (f"_hdr(st.headers, {self.const(operand[1])}, "
                        f"{self.const(operand[2])})")
            if kind == "meta":
                return f"st.meta.get({self.const(operand[1])}, 0)"
        return f"_bad_read({self.const(operand)})"

    def spill_lines(self) -> List[str]:
        return [f'_reg["{reg}"] = {reg}' for reg in self.used]

    def reload_lines(self) -> List[str]:
        return [f'{reg} = _reg["{reg}"]' for reg in self.used]

    def write_dst(self, index: int, dst: Any, expr: str) -> List[str]:
        """Statements writing ``expr`` to destination operand ``dst``.

        Non-register destinations evaluate the source first, then raise
        — matching the reference's read-then-write_register order.
        """
        if is_register(dst):
            return [f"{dst} = {expr}"]
        return [f"_t = {expr}", f"_bad_destination({self.const(dst)})"]

    # -- instruction lowering -------------------------------------------------

    def lower_straightline(self, index: int,
                           instruction: Instruction) -> Tuple[List[str], bool]:
        """(statements, always_raises) for one non-control instruction."""
        op = instruction.op
        args = instruction.args
        program = self.compiler.program

        if op in _ALU_TEMPLATES:
            a_op = args[1]
            b_op = args[2] if len(args) > 2 else None
            a_val = self.consts.value_before(index, a_op)
            b_val = (self.consts.value_before(index, b_op)
                     if len(args) > 2 else None)
            if a_val is not NAC and b_val is not NAC and len(args) > 2 \
                    and is_register(args[0]):
                # Fold the whole op when both inputs are proven
                # constants and the evaluation cannot fault.
                try:
                    folded = _ALU_OPS[op](a_val, b_val)
                except Exception:
                    folded = NAC
                if folded is not NAC and isinstance(folded,
                                                    (int, float, str)):
                    return [f"{args[0]} = {self.const(folded)}"], False
            a = self.read_expr(index, a_op)
            b = self.read_expr(index, b_op) if len(args) > 2 else "None"
            expr = _ALU_TEMPLATES[op].format(a=a, b=b)
            return self.write_dst(index, args[0], expr), False
        if op is Op.MOV:
            return self.write_dst(
                index, args[0], self.read_expr(index, args[1])), False
        if op is Op.NOP:
            return [], False
        if op is Op.RESOLVE:
            _, obj, offset = args[1]
            expr = (f'("addr", {self.const(obj)}, '
                    f'{self.read_expr(index, offset)})')
            return self.write_dst(index, args[0], expr), False
        if op in (Op.LOAD, Op.LOADD):
            _, obj, offset = args[-1]
            lines = [f"_o = {self.read_expr(index, offset)}"]
            if obj not in program.objects:
                # The reference resolves the object's region (raising
                # for undeclared names) before charging the access.
                message = f"{program.name!r} has no object {obj!r}"
                lines.append(f"raise KeyError({message!r})")
                return lines, True
            region = program.objects[obj].region
            lines += self.charge_lines(region)
            lines += self.write_dst(
                index, args[0], f"st.load_word({self.const(obj)}, _o)")
            return lines, False
        if op in (Op.STORE, Op.STORED):
            memref = args[-2] if op is Op.STORE else args[0]
            _, obj, offset = memref
            lines = [f"_o = {self.read_expr(index, offset)}"]
            if obj not in program.objects:
                message = f"{program.name!r} has no object {obj!r}"
                lines.append(f"raise KeyError({message!r})")
                return lines, True
            region = program.objects[obj].region
            lines += self.charge_lines(region)
            lines.append(
                f"st.store_word({self.const(obj)}, _o, "
                f"{self.read_expr(index, args[-1])})"
            )
            lines.append("st.wrote_memory = True")
            return lines, False
        if op is Op.MEMCPY:
            return self.lower_memcpy(index, args)
        if op is Op.HLOAD:
            _, header, field_name = args[1]
            expr = (f"_hdr(st.headers, {self.const(header)}, "
                    f"{self.const(field_name)})")
            return self.write_dst(index, args[0], expr), False
        if op is Op.HSTORE:
            _, header, field_name = args[0]
            return [
                f"st.headers.setdefault({self.const(header)}, {{}})"
                f"[{self.const(field_name)}] = "
                f"{self.read_expr(index, args[1])}"
            ], False
        if op is Op.MLOAD:
            expr = f"st.meta.get({self.const(args[1][1])}, 0)"
            return self.write_dst(index, args[0], expr), False
        if op is Op.MSTORE:
            return [
                f"st.meta[{self.const(args[0][1])}] = "
                f"{self.read_expr(index, args[1])}"
            ], False
        if op is Op.EMIT:
            return [
                "st.emitted.append(EmittedPacket("
                "headers={_hk: dict(_hv) for _hk, _hv in st.headers.items()},"
                " meta=dict(st.meta), payload=st.response_payload))"
            ], False
        if op in (Op.HASH, Op.CRC):
            expr = (f"(hash(({self.const(op.value)}, "
                    f"{self.read_expr(index, args[1])})) & 0xFFFFFFFF)")
            return self.write_dst(index, args[0], expr), False
        if op is Op.INTRINSIC:
            return self.lower_intrinsic(args)
        raise JitLoweringError(f"cannot lower opcode {op!r}")

    def charge_lines(self, region: Any) -> List[str]:
        """Region-access bookkeeping for one statically-known access.

        The *cycles* are folded into the segment constant; only the
        access count is recorded here, in execution order so the
        region dict's insertion order matches the reference exactly.
        """
        r = self.const(region)
        return [f"_ra[{r}] = _ra.get({r}, 0) + 1"]

    def memcpy_const_bursts(self, index: int, args) -> Optional[int]:
        """DMA burst count when the copy length is a proven constant.

        Mirrors the interpreter's ``max(1, ceil(n / BULK_BURST_BYTES))``
        exactly; :meth:`static_cycles` and :meth:`lower_memcpy` must
        agree on this value so the folded region charges replace the
        runtime ones one-for-one.
        """
        program = self.compiler.program
        if args[0][1] not in program.objects \
                or args[1][1] not in program.objects:
            return None  # KeyError path: keep runtime charge order.
        n = self.consts.value_before(index, args[2])
        if n is NAC or not isinstance(n, int) or isinstance(n, bool):
            return None
        return max(1, math.ceil(n / BULK_BURST_BYTES))

    def memcpy_proven_in_bounds(self, index: int, args) -> bool:
        """True when the verifier proves both sides inside their objects.

        Uses machine-guaranteed intervals only, so the proof holds for
        any runtime header/metadata contents. The emitted code still
        guards on the buffers actually having their declared sizes
        (callers may pass their own memory dict), so elision can never
        change behavior — it only removes the per-copy range check from
        the common path.
        """
        program = self.compiler.program
        dst_ref, src_ref, length = args
        length_iv = self.ranges.range_before(index, length)
        if length_iv is None or length_iv.lo is None or length_iv.lo < 0 \
                or length_iv.hi is None:
            return False
        for ref in (src_ref, dst_ref):
            obj = program.objects.get(ref[1])
            if obj is None:
                return False
            offset_iv = self.ranges.range_before(index, ref[2])
            if offset_iv is None or offset_iv.lo is None \
                    or offset_iv.lo < 0 or offset_iv.hi is None:
                return False
            if offset_iv.hi + length_iv.hi > obj.size_bytes:
                return False
        return True

    def lower_memcpy(self, index: int, args) -> Tuple[List[str], bool]:
        program = self.compiler.program
        dst_ref, src_ref, length = args
        _, dst_obj, dst_off = dst_ref
        _, src_obj, src_off = src_ref
        const_bursts = self.memcpy_const_bursts(index, args)
        lines = [
            f"_n = {self.read_expr(index, length)}",
            f"_do = {self.read_expr(index, dst_off)}",
            f"_so = {self.read_expr(index, src_off)}",
        ]
        if const_bursts is None:
            lines.append(f"_bursts = max(1, _ceil(_n / {BULK_BURST_BYTES}))")
            bursts_expr = "_bursts"
        else:
            # Burst count and cycle charges fold away; the cycles are
            # part of the segment constant (see static_cycles).
            self.compiler.lowering_stats["memcpy_folded"] += 1
            bursts_expr = str(const_bursts)
        for obj, off_is_dst in ((src_obj, False), (dst_obj, True)):
            if obj not in program.objects:
                message = f"{program.name!r} has no object {obj!r}"
                lines.append(f"raise KeyError({message!r})")
                return lines, True
            region = program.objects[obj].region
            r = self.const(region)
            lines.append(f"_ra[{r}] = _ra.get({r}, 0) + {bursts_expr}")
            if const_bursts is None:
                lines.append(
                    f"st.cycles += {REGION_ACCESS_CYCLES[region]} * _bursts")
        lines += [
            f"_sb = st._object_bytes({self.const(src_obj)})",
            f"_db = st._object_bytes({self.const(dst_obj)})",
        ]
        if self.memcpy_proven_in_bounds(index, args):
            # Proven in-bounds against the declared sizes: check only
            # when a caller-supplied memory dict deviates from them.
            self.compiler.lowering_stats["memcpy_checks_elided"] += 1
            src_size = program.objects[src_obj].size_bytes
            dst_size = program.objects[dst_obj].size_bytes
            lines += [
                f"if len(_sb) != {src_size} or len(_db) != {dst_size}:",
                "    if _so + _n > len(_sb) or _do + _n > len(_db):",
                "        raise ExecutionError('memcpy out of bounds')",
            ]
        else:
            lines += [
                "if _so + _n > len(_sb) or _do + _n > len(_db):",
                "    raise ExecutionError('memcpy out of bounds')",
            ]
        lines += [
            "_db[_do:_do + _n] = _sb[_so:_so + _n]",
            "st.wrote_memory = True",
        ]
        return lines, False

    def lower_intrinsic(self, args) -> Tuple[List[str], bool]:
        name = args[0]
        message = f"unknown intrinsic {name!r}"
        lines = [
            f"_ifn = _INTR.get({self.const(name)})",
            "if _ifn is None:",
            f"    raise ExecutionError({message!r})",
        ]
        # Intrinsics receive the machine and read registers through it,
        # so locals must be synchronized both ways around the call.
        lines += self.spill_lines()
        lines.append(f"st.cycles += _ifn(st, {self.const(tuple(args[1:]))})")
        lines.append(f"if _iwm({self.const(name)}):")
        lines.append("    st.wrote_memory = True")
        lines += self.reload_lines()
        return lines, False

    # -- block/segment structure ----------------------------------------------

    def segments(self, block) -> List[List[Tuple[int, Instruction]]]:
        """Split a block's instructions into step-accounting segments.

        A segment is a maximal run that may end with (but never
        continue past) a ``call`` — the callee's own step checks must
        observe the counts of everything up to and including the call,
        and nothing after it.
        """
        segments: List[List[Tuple[int, Instruction]]] = []
        current: List[Tuple[int, Instruction]] = []
        for index, instruction in block.instructions:
            current.append((index, instruction))
            if instruction.op is Op.CALL:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        return segments

    def static_cycles(self, segment: List[Tuple[int, Instruction]]) -> int:
        """Base cycles plus statically-known region charges, folded."""
        program = self.compiler.program
        total = 0
        for index, instruction in segment:
            op = instruction.op
            total += BASE_CYCLES[op]
            obj = None
            if op in (Op.LOAD, Op.LOADD):
                obj = instruction.args[-1][1]
            elif op is Op.STORE:
                obj = instruction.args[-2][1]
            elif op is Op.STORED:
                obj = instruction.args[0][1]
            elif op is Op.MEMCPY:
                # Constant-length copies fold their DMA burst charges
                # here; lower_memcpy drops the runtime counterpart.
                bursts = self.memcpy_const_bursts(index, instruction.args)
                if bursts is not None:
                    for ref in (instruction.args[1], instruction.args[0]):
                        region = program.objects[ref[1]].region
                        total += bursts * REGION_ACCESS_CYCLES[region]
            if obj is not None and obj in program.objects:
                total += REGION_ACCESS_CYCLES[program.objects[obj].region]
        return total

    def block_target(self, label: str) -> Optional[int]:
        """Block id a label jumps to, or None if the label is missing."""
        target_index = self.labels.get(label)
        if target_index is None:
            return None
        return self.cfg.block_at[target_index]

    def next_block(self, bid: int) -> int:
        return bid + 1 if bid + 1 < len(self.cfg.blocks) else _IMPLICIT

    # -- control-flow lowering --------------------------------------------------

    def lower_control(self, index: int, instruction: Instruction,
                      bid: int) -> List[str]:
        """Statements for a block-terminating control-flow instruction."""
        op = instruction.op
        args = instruction.args
        out: List[str] = []
        if op is Op.JMP:
            target = self.block_target(args[0])
            if target is None:
                out.append(f"raise KeyError({self.const(args[0])})")
            else:
                out.append(f"_b = {target}")
            return out
        if op in _BRANCH_TEMPLATES:
            target = self.block_target(args[2])
            fallthrough = self.next_block(bid)
            a_val = self.consts.value_before(index, args[0])
            b_val = self.consts.value_before(index, args[1])
            if a_val is not NAC and b_val is not NAC and target is not None:
                # Statically-decided branch (operands are proven
                # constants and the comparison cannot fault).
                try:
                    taken = _BRANCH_OPS[op](a_val, b_val)
                except Exception:
                    taken = None
                if taken is not None:
                    out.append(f"_b = {target if taken else fallthrough}")
                    return out
            cond = _BRANCH_TEMPLATES[op].format(
                a=self.read_expr(index, args[0]),
                b=self.read_expr(index, args[1]),
            )
            if target is None:
                out.append(f"if {cond}:")
                out.append(f"    raise KeyError({self.const(args[2])})")
                out.append(f"_b = {fallthrough}")
            else:
                out.append(f"if {cond}:")
                out.append(f"    _b = {target}")
                out.append("else:")
                out.append(f"    _b = {fallthrough}")
            return out
        if op is Op.CALL:
            callee = args[0]
            symbol = self.compiler.symbols.get(callee)
            if symbol is None:
                message = (f"{self.compiler.program.name!r} "
                           f"has no function {callee!r}")
                out.append(f"raise KeyError({message!r})")
                return out
            out += self.spill_lines()
            out.append(f"if {symbol}(st):")
            out.append("    return True")
            out += self.reload_lines()
            return out
        if op is Op.RET:
            if args:
                out.append(f"_t = {self.read_expr(index, args[0])}")
                out.append("r0 = _t")
                out.append("st.return_value = _t")
            out += self.spill_lines()
            out.append("return False")
            return out
        if op in _VERDICT_OPS:
            # The register file dies with the packet verdict; no spill.
            out.append(f'st.verdict = "{_VERDICT_OPS[op]}"')
            out.append("return True")
            return out
        if op is Op.HALT:
            out.append("return True")
            return out
        raise JitLoweringError(f"cannot lower control op {op!r}")

    # -- whole-function emission -------------------------------------------------

    def emit(self, symbol: str) -> None:
        out = self.out
        function = self.function
        body = function.body
        for op_check in body:
            if op_check.op not in _STRAIGHTLINE_OPS \
                    and op_check.op not in _CONTROL_OPS:
                raise JitLoweringError(
                    f"cannot lower opcode {op_check.op!r}")
        out.emit()
        out.emit()
        out.emit(f"def {symbol}(st):")
        out.indent += 1
        out.emit(f"# lambda IR function {self.name!r}: "
                 f"{len(body)} instruction(s), "
                 f"{len(self.cfg.blocks)} block(s)")
        if not body:
            # Empty body: immediate implicit return, no step check.
            out.emit("return False")
            out.indent -= 1
            return
        out.emit("_reg = st.registers")
        for line in self.reload_lines():
            out.emit(line)
        out.emit("_ra = st.region_accesses")
        # The reference checks the step limit at every body position,
        # labels included; a trailing label therefore checks once more
        # before the implicit return (and that is the *only* label
        # check not subsumed by the next segment's own pre-check).
        checked_implicit = body[-1].op is Op.LABEL
        out.emit("_b = 0")
        out.emit("while True:")
        out.indent += 1
        for block in self.cfg.blocks:
            guard = "if" if block.bid == 0 else "elif"
            out.emit(f"{guard} _b == {block.bid}:  "
                     f"# body[{block.start}:{block.end}]")
            out.indent += 1
            self.emit_block(block)
            out.indent -= 1
        out.emit("else:  # implicit return (fell off the end)")
        out.indent += 1
        if checked_implicit:
            out.emit("if st.executed >= st.step_limit:")
            out.emit("    _limit(st)")
        for line in self.spill_lines():
            out.emit(line)
        out.emit("return False")
        out.indent -= 2
        out.indent -= 1

    def emit_block(self, block) -> None:
        out = self.out
        emitted_any = False
        ends_with_control = False
        for segment in self.segments(block):
            emitted_any = True
            ends_with_control = self.emit_segment(segment, block.bid)
        if not emitted_any:
            # Label-only block: free fallthrough (label step checks are
            # subsumed by the successor's segment pre-check or by the
            # checked implicit return).
            out.emit(f"_b = {self.next_block(block.bid)}")
        elif not ends_with_control:
            out.emit(f"_b = {self.next_block(block.bid)}")

    def emit_segment(self, segment: List[Tuple[int, Instruction]],
                     bid: int) -> bool:
        """Emit one accounting segment; True if it ended in control flow."""
        out = self.out
        n = len(segment)
        instructions = tuple(instruction for _, instruction in segment)
        out.emit(f"if st.executed + {n} > st.step_limit:")
        out.indent += 1
        for line in self.spill_lines():
            out.emit(line)
        out.emit(f"_trip(st, {self.const(instructions)})")
        out.indent -= 1
        out.emit(f"st.executed += {n}")
        folded = self.static_cycles(segment)
        if folded:
            out.emit(f"st.cycles += {folded}")
        for index, instruction in segment:
            if instruction.op in _CONTROL_OPS:
                for line in self.lower_control(index, instruction, bid):
                    out.emit(line)
                if instruction.op is not Op.CALL:
                    return True
            else:
                lines, raises = self.lower_straightline(index, instruction)
                for line in lines:
                    out.emit(line)
                if raises:
                    return True
        return False


class JitProgram:
    """A lambda program compiled to a generated Python module."""

    def __init__(self, program: LambdaProgram) -> None:
        self.program = program
        self.signature = program_signature(program)
        self.out = _Emitter()
        #: IR function name -> generated symbol.
        self.symbols: Dict[str, str] = {
            name: f"_f{index}"
            for index, name in enumerate(program.functions)
        }
        self._constants: Dict[str, Any] = {}
        self._const_keys: Dict[Any, str] = {}
        self.source = ""
        #: IR function name -> generated Python callable.
        self.functions: Dict[str, Callable[[FastState], bool]] = {}
        #: Verifier-assisted lowering wins (observability for tests /
        #: dumps): constant-length MEMCPYs whose burst charges were
        #: folded, and memcpy bounds checks elided via proven ranges.
        self.lowering_stats: Dict[str, int] = {
            "memcpy_folded": 0,
            "memcpy_checks_elided": 0,
        }
        self._compile()

    def const(self, value: Any) -> str:
        """Expression for a compile-time constant.

        Plain scalars are inlined as literals (keeps dumped source
        readable); everything else goes through the constants pool
        injected into the generated module's globals.
        """
        if isinstance(value, bool) or value is None:
            return repr(value)
        if not isinstance(value, Enum):
            # Enum members (Region, Op) subclass str/int but their repr
            # is not valid source — those go through the pool below.
            if isinstance(value, (int, str)):
                return repr(value)
            if isinstance(value, float) and math.isfinite(value):
                return repr(value)
        try:
            key = self._const_keys.get(value)
        except TypeError:
            key = None
            value_hashable = False
        else:
            value_hashable = True
        if key is None:
            key = f"_K{len(self._constants)}"
            self._constants[key] = value
            if value_hashable:
                self._const_keys[value] = key
        return key

    def _compile(self) -> None:
        out = self.out
        out.emit(f"# JIT-generated code for lambda program "
                 f"{self.program.name!r}.")
        out.emit("# One Python function per IR function; registers are"
                 " locals; cycle costs")
        out.emit("# and step checks are folded per straight-line segment."
                 " Regenerate with:")
        out.emit(f"#   python -m repro.isa.jit --dump-source ...")
        for name, function in self.program.functions.items():
            _FunctionLowering(self, name, function).emit(self.symbols[name])
        self.source = out.source()
        namespace: Dict[str, Any] = {
            "ExecutionError": ExecutionError,
            "EmittedPacket": EmittedPacket,
            "_hdr": _read_header,
            "_bad_read": _bad_read,
            "_bad_destination": _bad_destination,
            "_limit": _raise_step_limit,
            "_trip": _step_trip,
            "_INTR": _INTRINSICS,
            "_iwm": intrinsic_writes_memory,
            "_ceil": math.ceil,
        }
        namespace.update(self._constants)
        try:
            code = compile(self.source, f"<jit:{self.program.name}>", "exec")
        except SyntaxError as error:  # pragma: no cover - codegen bug guard
            raise JitLoweringError(f"generated source failed to compile: "
                                   f"{error}") from error
        exec(code, namespace)
        self.functions = {
            name: namespace[symbol] for name, symbol in self.symbols.items()
        }

    def entry(self, name: str) -> Callable[[FastState], bool]:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(
                f"{self.program.name!r} has no function {name!r}"
            ) from None


def compile_jit(program: LambdaProgram) -> JitProgram:
    """Compile ``program`` to generated Python source (raises
    :class:`JitLoweringError` if it cannot be lowered)."""
    return JitProgram(program)


class JitInterpreter:
    """Drop-in engine executing JIT-compiled lambda programs.

    Mirrors the :class:`~repro.isa.fastpath.FastInterpreter` interface
    (``execute``/``run``/``compiled_for``) with the same weakly-keyed,
    signature-guarded compile cache. Programs that fail to lower fall
    back — permanently, until their structure changes — to an internal
    fastpath engine; :attr:`stats` counts hits/misses/fallbacks so the
    NIC can surface tier behaviour as metrics.
    """

    tier = "jit"

    def __init__(self, clock_hz: float = 633e6,
                 step_limit: int = DEFAULT_STEP_LIMIT) -> None:
        self.clock_hz = clock_hz
        self.step_limit = step_limit
        self.stats = CompileCacheStats()
        #: The fallback tier for programs the JIT cannot lower.
        self.fallback = FastInterpreter(clock_hz=clock_hz,
                                        step_limit=step_limit)
        self._compiled: "weakref.WeakKeyDictionary[LambdaProgram, Tuple]" = (
            weakref.WeakKeyDictionary()
        )
        #: Tier that served the most recent execute() call.
        self.last_tier = "jit"

    def compiled_for(self, program: LambdaProgram) -> Optional[JitProgram]:
        """The cached compilation (None when the program fell back)."""
        entry = self._compiled.get(program)
        signature = program_signature(program)
        if entry is not None and entry[0] == signature:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        try:
            compiled: Optional[JitProgram] = JitProgram(program)
        except Exception:
            # Any lowering failure degrades to the (differentially
            # proven) fastpath tier rather than breaking execution; the
            # JIT test suite asserts zero fallbacks on all registered
            # workloads so codegen regressions still surface in CI.
            compiled = None
            self.stats.fallbacks += 1
        self._compiled[program] = (signature, compiled)
        return compiled

    def dump_source(self, program: LambdaProgram) -> Optional[str]:
        """Generated Python source for ``program`` (None on fallback)."""
        compiled = self.compiled_for(program)
        return compiled.source if compiled is not None else None

    def execute(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
        entry: Optional[str] = None,
    ) -> Tuple[ExecutionResult, bool]:
        """Run to completion; returns (result, wrote_persistent_memory)."""
        compiled = self.compiled_for(program)
        if compiled is None:
            self.last_tier = "fastpath"
            return self.fallback.execute(program, headers, meta, memory,
                                         entry)
        self.last_tier = "jit"
        st = FastState(program, headers, meta, memory, self.step_limit)
        compiled.entry(entry or program.entry)(st)
        result = ExecutionResult(
            verdict=st.verdict,
            return_value=st.return_value,
            cycles=st.cycles,
            instructions_executed=st.executed,
            region_accesses=st.region_accesses,
            emitted=st.emitted,
            headers=st.headers,
            meta=st.meta,
            response_payload=st.response_payload,
        )
        return result, st.wrote_memory

    def run(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
        entry: Optional[str] = None,
    ) -> ExecutionResult:
        """Interpreter-compatible entry point."""
        result, _ = self.execute(program, headers, meta, memory, entry)
        return result


def _main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.isa.jit``: inspect generated source.

    Dumps the JIT's generated Python for an assembled lambda file or a
    registered workload — the ``--dump-source`` debugging path.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.isa.jit",
        description="dump the JIT's generated Python source for a lambda",
    )
    parser.add_argument("files", nargs="*",
                        help=".asm lambda files to assemble and compile")
    parser.add_argument("--workload", action="append", default=[],
                        help="registered workload name (repeatable); "
                             "'all' for every registered workload")
    parser.add_argument("--dump-source", action="store_true", default=True,
                        help="print generated source (default; kept "
                             "explicit for scripts)")
    args = parser.parse_args(argv)

    programs: List[LambdaProgram] = []
    if args.files:
        from .asm import assemble
        for path in args.files:
            with open(path, "r", encoding="utf-8") as handle:
                programs.append(assemble(handle.read(), name=path))
    names = args.workload
    if names:
        from ..workloads.registry import standard_workloads
        registry = standard_workloads()
        if "all" in names:
            names = sorted(registry)
        for name in names:
            programs.append(registry[name].nic_program())
    if not programs:
        parser.error("nothing to compile: pass .asm files or --workload")

    for program in programs:
        try:
            compiled = JitProgram(program)
        except JitLoweringError as error:
            print(f"# {program.name}: fallback to fastpath ({error})")
            continue
        print(compiled.source)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(_main())
