"""Executable semantics for lambda programs.

The interpreter runs a :class:`~repro.isa.program.LambdaProgram` against
a parsed packet (header fields + match metadata) and produces a
:class:`ExecutionResult` that includes the exact cycle count — the NPU
model turns cycles into simulated time. Memory objects are real
bytearrays, so lambdas like the web server genuinely move bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .instructions import (
    BASE_CYCLES,
    Instruction,
    Op,
    REGION_ACCESS_CYCLES,
    Region,
    is_register,
)
from .program import LambdaProgram


class ExecutionError(Exception):
    """Raised for runtime faults inside a lambda (bad operand, OOB, …)."""


class IsolationError(ExecutionError):
    """A lambda touched memory outside its own objects (paper §4.2.1-D2)."""


#: Packet verdicts a lambda can end with.
VERDICT_FORWARD = "forward"
VERDICT_DROP = "drop"
VERDICT_TO_HOST = "to_host"
VERDICT_FALLTHROUGH = "fallthrough"  # returned without a packet op

#: Hard cap so buggy lambdas cannot hang the simulation.
DEFAULT_STEP_LIMIT = 2_000_000

#: Bytes moved per DMA burst by bulk operations (memcpy, intrinsics).
BULK_BURST_BYTES = 64


@dataclass
class EmittedPacket:
    """Record of an ``emit`` executed by the lambda."""

    headers: Dict[str, Dict[str, Any]]
    meta: Dict[str, Any]
    payload: bytes = b""


@dataclass
class ExecutionResult:
    """Outcome of one lambda invocation."""

    verdict: str
    return_value: Any
    cycles: int
    instructions_executed: int
    region_accesses: Dict[Region, int] = field(default_factory=dict)
    emitted: List[EmittedPacket] = field(default_factory=list)
    headers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    response_payload: bytes = b""

    def time_seconds(self, clock_hz: float) -> float:
        """Wall-clock duration of this execution at ``clock_hz``."""
        return self.cycles / clock_hz


#: An intrinsic receives (machine, args) and returns extra cycles.
IntrinsicFn = Callable[["Machine", Tuple[Any, ...]], int]

_INTRINSICS: Dict[str, IntrinsicFn] = {}

#: Effect declarations: does the intrinsic mutate persistent memory
#: objects? Anything that does (or is undeclared) makes the enclosing
#: execution stateful, which the NIC's memo cache must treat as an
#: invalidation point. Per-request state (``meta``, headers, the
#: response payload) does not count — it is captured in the result.
_INTRINSIC_WRITES_MEMORY: Dict[str, bool] = {}

#: Static worst-case cost models for the verifier's WCET estimator. A
#: model receives ``(program, args, reader)`` where ``reader(operand)``
#: returns the operand's statically-known value or None, and must return
#: an upper bound on the cycles the intrinsic charges at runtime.
IntrinsicWcetFn = Callable[[Any, Tuple[Any, ...], Callable[[Any], Any]], int]

_INTRINSIC_WCET: Dict[str, IntrinsicWcetFn] = {}


def register_intrinsic(name: str, fn: IntrinsicFn,
                       writes_memory: bool = True,
                       wcet: Optional[IntrinsicWcetFn] = None) -> None:
    """Register a bulk operation usable via ``Op.INTRINSIC``.

    ``writes_memory`` declares whether the intrinsic mutates persistent
    memory objects; the conservative default keeps undeclared intrinsics
    safe for the execution memo cache (their runs are never memoised).
    ``wcet`` optionally supplies a static cost model for the verifier;
    without one, programs using the intrinsic get no WCET bound.
    """
    _INTRINSICS[name] = fn
    _INTRINSIC_WRITES_MEMORY[name] = writes_memory
    if wcet is not None:
        _INTRINSIC_WCET[name] = wcet
    else:
        _INTRINSIC_WCET.pop(name, None)


def intrinsic_registered(name: str) -> bool:
    return name in _INTRINSICS


def intrinsic_writes_memory(name: str) -> bool:
    """Declared memory effect of an intrinsic (unknown => True)."""
    return _INTRINSIC_WRITES_MEMORY.get(name, True)


def intrinsic_wcet(name: str) -> Optional[IntrinsicWcetFn]:
    """The registered static cost model of an intrinsic, if any."""
    return _INTRINSIC_WCET.get(name)


class Machine:
    """Mutable execution state for one lambda invocation."""

    def __init__(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
    ) -> None:
        self.program = program
        self.registers: Dict[str, int] = {f"r{i}": 0 for i in range(16)}
        self.headers = headers if headers is not None else {}
        self.meta = meta if meta is not None else {}
        # Persistent memory may be passed in (global objects persist
        # across runs, paper §4.1); otherwise allocate fresh zeroed
        # objects of the declared sizes.
        if memory is None:
            memory = {
                obj.name: bytearray(obj.size_bytes)
                for obj in program.objects.values()
            }
        self.memory = memory
        self.response_payload: bytes = b""
        self.emitted: List[EmittedPacket] = []

    # -- operand access ----------------------------------------------------

    def read(self, operand: Any) -> Any:
        if is_register(operand):
            return self.registers[operand]
        if isinstance(operand, (int, float)):
            return operand
        if isinstance(operand, str):
            # Non-register strings are literal values (e.g. route names
            # stored into metadata by lowered table actions).
            return operand
        if isinstance(operand, tuple):
            kind = operand[0]
            if kind == "hdr":
                return self.read_header(operand[1], operand[2])
            if kind == "meta":
                return self.meta.get(operand[1], 0)
        raise ExecutionError(f"cannot read operand {operand!r}")

    def write_register(self, operand: Any, value: Any) -> None:
        if not is_register(operand):
            raise ExecutionError(f"destination {operand!r} is not a register")
        self.registers[operand] = value

    def read_header(self, header: str, field_name: str) -> Any:
        try:
            return self.headers[header][field_name]
        except KeyError:
            raise ExecutionError(
                f"header field {header}.{field_name} not present"
            ) from None

    def write_header(self, header: str, field_name: str, value: Any) -> None:
        self.headers.setdefault(header, {})[field_name] = value

    # -- memory ------------------------------------------------------------

    def _object_bytes(self, name: str) -> bytearray:
        try:
            return self.memory[name]
        except KeyError:
            raise IsolationError(
                f"lambda {self.program.name!r} accessed foreign object {name!r}"
            ) from None

    def load_word(self, obj: str, offset: int) -> int:
        data = self._object_bytes(obj)
        if offset < 0 or offset + 8 > len(data) + 7:
            raise ExecutionError(f"load out of bounds: {obj}[{offset}]")
        chunk = bytes(data[offset:offset + 8])
        return int.from_bytes(chunk.ljust(8, b"\x00"), "little")

    def store_word(self, obj: str, offset: int, value: int) -> None:
        data = self._object_bytes(obj)
        if offset < 0 or offset >= len(data):
            raise ExecutionError(f"store out of bounds: {obj}[{offset}]")
        width = min(8, len(data) - offset)
        data[offset:offset + width] = (value & (2 ** (8 * width) - 1)).to_bytes(
            width, "little"
        )


class Interpreter:
    """Executes lambda programs to completion with cycle accounting."""

    def __init__(self, clock_hz: float = 633e6,
                 step_limit: int = DEFAULT_STEP_LIMIT) -> None:
        self.clock_hz = clock_hz
        self.step_limit = step_limit

    def run(
        self,
        program: LambdaProgram,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, bytearray]] = None,
        entry: Optional[str] = None,
    ) -> ExecutionResult:
        machine = Machine(program, headers, meta, memory)
        entry_name = entry or program.entry
        function = program.function(entry_name)

        region_accesses: Dict[Region, int] = {}
        cycles = 0
        executed = 0
        verdict = VERDICT_FALLTHROUGH
        return_value: Any = None

        # Call stack of (function, labels, pc).
        frame = [function, function.labels(), 0]
        stack: List[list] = []

        def region_of(obj_name: str) -> Region:
            return program.object(obj_name).region

        def charge_access(region: Region, words: int = 1) -> int:
            region_accesses[region] = region_accesses.get(region, 0) + words
            return REGION_ACCESS_CYCLES[region] * words

        while True:
            function, labels, pc = frame
            if pc >= len(function.body):
                # Fell off the end of a function: implicit return.
                if stack:
                    frame = stack.pop()
                    continue
                break
            if executed >= self.step_limit:
                raise ExecutionError(
                    f"step limit {self.step_limit} exceeded in "
                    f"{program.name!r} (runaway lambda?)"
                )
            instruction = function.body[pc]
            frame[2] = pc + 1
            op = instruction.op
            args = instruction.args
            if op is Op.LABEL:
                continue
            executed += 1
            cycles += BASE_CYCLES[op]

            if op in _ALU_OPS:
                a = machine.read(args[1])
                b = machine.read(args[2]) if len(args) > 2 else None
                machine.write_register(args[0], _ALU_OPS[op](a, b))
            elif op is Op.MOV:
                machine.write_register(args[0], machine.read(args[1]))
            elif op is Op.JMP:
                frame[2] = labels[args[0]]
            elif op in _BRANCH_OPS:
                if _BRANCH_OPS[op](machine.read(args[0]), machine.read(args[1])):
                    frame[2] = labels[args[2]]
            elif op is Op.CALL:
                stack.append(frame)
                callee = program.function(args[0])
                frame = [callee, callee.labels(), 0]
            elif op is Op.RET:
                if args:
                    return_value = machine.read(args[0])
                    machine.registers["r0"] = return_value
                if stack:
                    frame = stack.pop()
                else:
                    break
            elif op is Op.HALT:
                break
            elif op is Op.NOP:
                pass
            elif op is Op.RESOLVE:
                _, obj, offset = args[1]
                machine.write_register(
                    args[0], ("addr", obj, machine.read(offset))
                )
            elif op in (Op.LOAD, Op.LOADD):
                memref = args[-1]
                _, obj, offset = memref
                offset_value = machine.read(offset)
                cycles += charge_access(region_of(obj))
                machine.write_register(args[0], machine.load_word(obj, offset_value))
            elif op in (Op.STORE, Op.STORED):
                memref = args[-2] if op is Op.STORE else args[0]
                _, obj, offset = memref
                offset_value = machine.read(offset)
                cycles += charge_access(region_of(obj))
                machine.store_word(obj, offset_value, machine.read(args[-1]))
            elif op is Op.MEMCPY:
                dst_ref, src_ref, length = args
                _, dst_obj, dst_off = dst_ref
                _, src_obj, src_off = src_ref
                n = machine.read(length)
                dst_off_v = machine.read(dst_off)
                src_off_v = machine.read(src_off)
                # Bulk copies go through the DMA engine in 64 B bursts,
                # paying one access charge per burst rather than per word.
                bursts = max(1, math.ceil(n / BULK_BURST_BYTES))
                cycles += charge_access(region_of(src_obj), bursts)
                cycles += charge_access(region_of(dst_obj), bursts)
                src_bytes = machine._object_bytes(src_obj)
                dst_bytes = machine._object_bytes(dst_obj)
                if src_off_v + n > len(src_bytes) or dst_off_v + n > len(dst_bytes):
                    raise ExecutionError("memcpy out of bounds")
                dst_bytes[dst_off_v:dst_off_v + n] = src_bytes[src_off_v:src_off_v + n]
            elif op is Op.HLOAD:
                _, header, field_name = args[1]
                machine.write_register(args[0], machine.read_header(header, field_name))
            elif op is Op.HSTORE:
                _, header, field_name = args[0]
                machine.write_header(header, field_name, machine.read(args[1]))
            elif op is Op.MLOAD:
                machine.write_register(args[0], machine.meta.get(args[1][1], 0))
            elif op is Op.MSTORE:
                machine.meta[args[0][1]] = machine.read(args[1])
            elif op is Op.EMIT:
                machine.emitted.append(
                    EmittedPacket(
                        headers={k: dict(v) for k, v in machine.headers.items()},
                        meta=dict(machine.meta),
                        payload=machine.response_payload,
                    )
                )
            elif op is Op.FORWARD:
                verdict = VERDICT_FORWARD
                break
            elif op is Op.DROP:
                verdict = VERDICT_DROP
                break
            elif op is Op.TO_HOST:
                verdict = VERDICT_TO_HOST
                break
            elif op in (Op.HASH, Op.CRC):
                value = machine.read(args[1])
                machine.write_register(args[0], hash((op.value, value)) & 0xFFFFFFFF)
            elif op is Op.INTRINSIC:
                name = args[0]
                fn = _INTRINSICS.get(name)
                if fn is None:
                    raise ExecutionError(f"unknown intrinsic {name!r}")
                cycles += fn(machine, args[1:])
            else:  # pragma: no cover - every op is handled above
                raise ExecutionError(f"unhandled opcode {op!r}")

        return ExecutionResult(
            verdict=verdict,
            return_value=return_value,
            cycles=cycles,
            instructions_executed=executed,
            region_accesses=region_accesses,
            emitted=machine.emitted,
            headers=machine.headers,
            meta=machine.meta,
            response_payload=machine.response_payload,
        )


_ALU_OPS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHR: lambda a, b: a >> b,
    Op.MIN: lambda a, b: min(a, b),
    Op.MAX: lambda a, b: max(a, b),
}

_BRANCH_OPS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}
