"""Static analyses over lambda programs.

These feed the workload manager's optimisations (paper §5.1):

* reachability (dead-code elimination),
* duplicate-function detection (lambda coalescing),
* memory-access analysis (memory stratification),
* header usage (automatic parser generation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .instructions import Instruction, Op
from .program import AccessMode, Function, LambdaProgram


def reachable_functions(program: LambdaProgram) -> Set[str]:
    """Function names reachable from the entry via calls."""
    seen: Set[str] = set()
    stack = [program.entry]
    while stack:
        name = stack.pop()
        if name in seen or name not in program.functions:
            continue
        seen.add(name)
        stack.extend(program.functions[name].called_functions())
    return seen


def unreachable_code(function: Function) -> List[int]:
    """Indices of instructions that can never execute.

    Built on the verifier's control-flow graph: an instruction is dead
    iff its basic block is unreachable from the function entry. Unlike
    the old linear scan, a label after an unconditional control
    transfer only resurrects the code that follows when something
    actually branches to it.
    """
    from .verify.cfg import build_cfg

    cfg = build_cfg(function)
    live_blocks = cfg.reachable()
    dead: List[int] = []
    for block in cfg.blocks:
        if block.bid in live_blocks:
            continue
        dead.extend(index for index, _ in block.instructions)
    dead.sort()
    return dead


def function_signature(function: Function) -> Tuple:
    """A structural fingerprint: identical bodies hash identically."""
    return tuple(
        (instruction.op, instruction.args)
        for instruction in function.body
        if instruction.is_real
    )


def duplicate_functions(programs: List[LambdaProgram]) -> Dict[Tuple, List[Tuple[str, str]]]:
    """Group identical function bodies across programs.

    Returns ``{signature: [(program_name, function_name), ...]}`` with
    only groups of two or more retained — these are the candidates that
    lambda coalescing hoists into a shared library.
    """
    groups: Dict[Tuple, List[Tuple[str, str]]] = {}
    for program in programs:
        for function in program.functions.values():
            if function.name == program.entry:
                continue  # Entry points are dispatch targets; never merged.
            groups.setdefault(function_signature(function), []).append(
                (program.name, function.name)
            )
    return {sig: where for sig, where in groups.items() if len(where) > 1}


@dataclass
class ObjectAccess:
    """Observed access pattern of one memory object."""

    name: str
    reads: int = 0
    writes: int = 0
    in_loop: bool = False

    @property
    def mode(self) -> AccessMode:
        if self.reads and self.writes:
            return AccessMode.READ_WRITE
        if self.writes:
            return AccessMode.WRITE
        return AccessMode.READ

    @property
    def total(self) -> int:
        return self.reads + self.writes


def memory_access_profile(program: LambdaProgram) -> Dict[str, ObjectAccess]:
    """Static access counts per object, with loop detection.

    An access between a label and a backward jump to it is "in a loop"
    and weighted as hot by the stratification pass.
    """
    profile: Dict[str, ObjectAccess] = {
        name: ObjectAccess(name) for name in program.objects
    }

    for function in program.functions.values():
        loop_ranges = _loop_ranges(function)
        for index, instruction in enumerate(function.body):
            for obj, is_write in _object_operands(instruction):
                if obj not in profile:
                    continue
                access = profile[obj]
                if is_write:
                    access.writes += 1
                else:
                    access.reads += 1
                if any(start <= index <= end for start, end in loop_ranges):
                    access.in_loop = True
    return profile


def _loop_ranges(function: Function) -> List[Tuple[int, int]]:
    labels = function.labels()
    ranges = []
    for index, instruction in enumerate(function.body):
        if instruction.op in (Op.JMP, Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            target = labels.get(instruction.args[-1])
            if target is not None and target < index:
                ranges.append((target, index))
    return ranges


def _object_operands(instruction: Instruction):
    """Yield (object_name, is_write) pairs for memory operands."""
    op = instruction.op
    if op in (Op.LOAD, Op.LOADD):
        ref = instruction.args[-1]
        if isinstance(ref, tuple) and ref[0] == "mem":
            yield ref[1], False
    elif op in (Op.STORE, Op.STORED):
        ref = instruction.args[-2] if op is Op.STORE else instruction.args[0]
        if isinstance(ref, tuple) and ref[0] == "mem":
            yield ref[1], True
    elif op is Op.MEMCPY:
        dst_ref, src_ref = instruction.args[0], instruction.args[1]
        yield dst_ref[1], True
        yield src_ref[1], False
    elif op is Op.INTRINSIC:
        # Intrinsics name the objects they touch in their args by
        # convention: ("mem", name, 0) operands.
        for arg in instruction.args[1:]:
            if isinstance(arg, tuple) and len(arg) == 3 and arg[0] == "mem":
                yield arg[1], True


def headers_used(program: LambdaProgram) -> Set[str]:
    """Header types referenced anywhere in the program's instructions."""
    used: Set[str] = set(program.headers_used)
    for function in program.functions.values():
        for instruction in function.body:
            for arg in instruction.args:
                if isinstance(arg, tuple) and len(arg) == 3 and arg[0] == "hdr":
                    used.add(arg[1])
    return used
