"""The λ-NIC lambda instruction set.

Lambdas are written in a restricted C-like language (Micro-C in the
paper); here they are authored against a small RISC-like IR that plays
the role of the NPU's compiled form. The IR is concrete enough to

* count instructions (Figure 9's optimizer-effectiveness metric),
* execute lambdas for real in the NPU model (run-to-completion), and
* charge per-instruction cycle costs including the memory hierarchy.

Operand conventions
-------------------
* ``"rN"`` strings name one of 16 general-purpose registers.
* plain ints/floats are immediates.
* ``("mem", object_name, offset_operand)`` references a named memory
  object (offset may itself be a register or immediate).
* ``("hdr", header_name, field)`` references a parsed header field.
* ``("meta", key)`` references per-packet metadata (match_data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Tuple


class Region(str, Enum):
    """Memory regions of the abstract machine / Netronome hierarchy."""

    FLAT = "flat"      # Virtual flat address space (pre-stratification).
    LOCAL = "local"    # Per-core local memory.
    CTM = "ctm"        # Cluster target memory (per island).
    IMEM = "imem"      # Internal on-chip SRAM (shared).
    EMEM = "emem"      # External DRAM (shared).

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region.{self.name}"


#: Access latency in NPU cycles for a word-sized access per region.
#: FLAT accesses additionally pay the software address-resolution cost
#: (the ``resolve`` instruction) until memory stratification places the
#: object into a concrete region.
REGION_ACCESS_CYCLES = {
    Region.FLAT: 120,   # Pessimistic: treated as EMEM until placed.
    Region.LOCAL: 3,
    Region.CTM: 50,
    Region.IMEM: 180,
    Region.EMEM: 300,
}

#: Capacity of each region on the modelled Agilio CX (bytes).
REGION_CAPACITY_BYTES = {
    Region.LOCAL: 16 * 1024,          # per core
    Region.CTM: 256 * 1024,           # per island
    Region.IMEM: 8 * 1024 * 1024,     # shared
    Region.EMEM: 2 * 1024 * 1024 * 1024,  # 2 GiB on-board DRAM
}


class Op(str, Enum):
    """Opcodes."""

    # ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    MIN = "min"
    MAX = "max"
    # Control flow
    JMP = "jmp"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    CALL = "call"
    RET = "ret"
    HALT = "halt"
    LABEL = "label"  # pseudo-instruction marking a branch target
    NOP = "nop"
    # Memory
    RESOLVE = "resolve"  # flat-address -> physical-address computation
    LOAD = "load"
    STORE = "store"
    LOADD = "loadd"      # direct (stratified) load: resolve folded in
    STORED = "stored"    # direct (stratified) store
    MEMCPY = "memcpy"
    # Headers / metadata / packet
    HLOAD = "hload"
    HSTORE = "hstore"
    MLOAD = "mload"
    MSTORE = "mstore"
    EMIT = "emit"
    FORWARD = "forward"
    DROP = "drop"
    TO_HOST = "to_host"
    # Specialised hardware assists
    HASH = "hash"
    CRC = "crc"
    #: Bulk data-parallel helper (e.g. pixel transform); semantics are
    #: supplied by the interpreter's intrinsic registry and the cycle
    #: cost scales with the data size the intrinsic reports.
    INTRINSIC = "intrinsic"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op.{self.name}"


#: Base cycle cost per opcode (memory ops add the region access cost).
BASE_CYCLES = {
    Op.ADD: 1, Op.SUB: 1, Op.MUL: 4, Op.AND: 1, Op.OR: 1, Op.XOR: 1,
    Op.SHL: 1, Op.SHR: 1, Op.MOV: 1, Op.MIN: 1, Op.MAX: 1,
    Op.JMP: 1, Op.BEQ: 1, Op.BNE: 1, Op.BLT: 1, Op.BGE: 1,
    Op.CALL: 3, Op.RET: 3, Op.HALT: 1, Op.LABEL: 0, Op.NOP: 1,
    Op.RESOLVE: 2, Op.LOAD: 1, Op.STORE: 1, Op.LOADD: 1, Op.STORED: 1,
    Op.MEMCPY: 4,
    Op.HLOAD: 1, Op.HSTORE: 1, Op.MLOAD: 1, Op.MSTORE: 1,
    Op.EMIT: 8, Op.FORWARD: 2, Op.DROP: 1, Op.TO_HOST: 4,
    Op.HASH: 6, Op.CRC: 6, Op.INTRINSIC: 4,
}

#: Bytes of instruction store that one IR instruction occupies. The
#: Netronome ME instruction word is 64 bits wide.
INSTRUCTION_BYTES = 8


@dataclass(frozen=True)
class Instruction:
    """A single IR instruction: opcode plus operand tuple."""

    op: Op
    args: Tuple[Any, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.op, Op):
            raise TypeError(f"op must be an Op, got {self.op!r}")

    @property
    def is_real(self) -> bool:
        """True if this occupies instruction store (labels do not)."""
        return self.op is not Op.LABEL

    def __repr__(self) -> str:
        rendered = ", ".join(_render_operand(arg) for arg in self.args)
        return f"{self.op.value} {rendered}".rstrip()


def _render_operand(arg: Any) -> str:
    if isinstance(arg, tuple):
        kind = arg[0]
        if kind == "mem":
            return f"[{arg[1]}+{_render_operand(arg[2])}]"
        if kind == "hdr":
            return f"{arg[1]}.{arg[2]}"
        if kind == "meta":
            return f"meta.{arg[1]}"
        return repr(arg)
    if isinstance(arg, Region):
        return arg.value
    return str(arg)


def ins(op: Op, *args: Any) -> Instruction:
    """Shorthand constructor used by the builder and tests."""
    return Instruction(op, tuple(args))


def is_register(operand: Any) -> bool:
    """True for operands naming one of the 16 GPRs (``"r0"``–``"r15"``)."""
    return (
        isinstance(operand, str)
        and len(operand) >= 2
        and operand[0] == "r"
        and operand[1:].isdigit()
        and 0 <= int(operand[1:]) < 16
    )


def is_mem_ref(operand: Any) -> bool:
    return isinstance(operand, tuple) and len(operand) == 3 and operand[0] == "mem"


def is_hdr_ref(operand: Any) -> bool:
    return isinstance(operand, tuple) and len(operand) == 3 and operand[0] == "hdr"


def is_meta_ref(operand: Any) -> bool:
    return isinstance(operand, tuple) and len(operand) == 2 and operand[0] == "meta"
