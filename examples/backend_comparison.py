#!/usr/bin/env python
"""Compare the three backends on the paper's interactive workloads.

A miniature Figure 6 + Figure 7: run the web-server and key-value
workloads against λ-NIC, bare-metal, and containers, and print mean/p99
latency and closed-loop throughput side by side.

Run:  python examples/backend_comparison.py
"""

from repro.serverless import Testbed, closed_loop
from repro.workloads import kv_client_spec, web_server_spec

BACKENDS = ["lambda-nic", "bare-metal", "container"]


def measure(backend: str, spec, n_requests: int = 120):
    testbed = Testbed(seed=3, n_workers=1)
    testbed.add_backend(backend)

    def scenario(env):
        yield testbed.manager.deploy(spec, backend)
        result = yield closed_loop(
            testbed.env, testbed.gateway, spec.name, n_requests=n_requests,
        )
        return result

    process = testbed.env.process(scenario(testbed.env))
    testbed.run(until=process)
    return process.value


def main() -> None:
    for spec in [web_server_spec(), kv_client_spec()]:
        print(f"\n=== {spec.name} ===")
        print(f"{'backend':12s} {'mean':>12s} {'p99':>12s} {'req/s':>10s} "
              f"{'vs lambda-nic':>14s}")
        baseline = None
        for backend in BACKENDS:
            result = measure(backend, spec)
            if baseline is None:
                baseline = result.mean_latency
            print(f"{backend:12s} {result.mean_latency*1e6:10.1f}us "
                  f"{result.percentile(99)*1e6:10.1f}us "
                  f"{result.throughput_rps:10.0f} "
                  f"{result.mean_latency / baseline:13.1f}x")
    print("\npaper (Fig. 6): container ~880x, bare-metal ~30x slower "
          "than lambda-nic on these workloads")


if __name__ == "__main__":
    main()
