#!/usr/bin/env python
"""Chaos demo: kill the SmartNICs mid-load, degrade, recover.

The web-server lambda runs on λ-NIC with a warm container standby. A
fault plan cuts power to every NIC while a closed-loop client hammers
the gateway; the health monitor notices, re-routes onto the container
backend, and reverses the move when the NICs come back — the client
barely notices.

Run:  python examples/chaos_recovery.py
"""

from repro.experiments.fault_recovery import availability
from repro.faults import FaultPlan
from repro.serverless import Testbed, closed_loop
from repro.workloads import web_server_spec


def main() -> None:
    tb = Testbed(
        seed=3,
        n_workers=2,
        with_failover=True,
        gateway_kwargs=dict(request_timeout=0.25, max_retries=8,
                            backoff_base=0.05, backoff_max=0.5),
        manager_kwargs=dict(fallback_order=("container", "bare-metal")),
    )
    tb.add_lambda_nic_backend()
    tb.add_container_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        print(f"[{env.now:7.2f}s] deployed {spec.name} on lambda-nic "
              f"-> {tb.gateway.route_for(spec.name).targets}")

        yield tb.manager.prepare_standby(spec.name, "container")
        print(f"[{env.now:7.2f}s] container standby warm")

        t0 = env.now
        plan = (FaultPlan()
                .kill_nic(t0 + 2.0, "m2-nic")
                .kill_nic(t0 + 4.0, "m3-nic")
                .restore_nic(t0 + 10.0, "m2-nic")
                .restore_nic(t0 + 10.0, "m3-nic"))
        tb.add_fault_injector(plan)
        print(f"[{env.now:7.2f}s] fault plan armed: "
              f"{[(e.at, e.action) for e in plan]}")

        load = closed_loop(tb.env, tb.gateway, spec.name,
                           n_requests=600, concurrency=2, think_time=0.05)
        result = yield load
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    result = process.value

    print()
    print("injected faults:")
    for at, action, target in tb.injector.trace:
        print(f"  [{at:7.2f}s] {action} {target}")
    print("failover actions:")
    for event in tb.health.events:
        print(f"  [{event.at:7.2f}s] {event.workload}: {event.kind} "
              f"({event.detail}) in {event.duration * 1e3:.1f} ms")
    record = tb.manager.record(spec.name)
    print(f"\nserving backend now: {record.backend_kind} "
          f"(degraded={record.degraded})")
    print(f"client saw: {result.completed} ok, {result.failures} failed "
          f"-> availability {100 * availability(result):.2f}%")
    assert availability(result) >= 0.99
    assert record.backend_kind == "lambda-nic" and not record.degraded
    kinds = [event.kind for event in tb.health.events]
    assert "degrade" in kinds and "restore" in kinds
    print("all good: degraded to containers and came back home.")


if __name__ == "__main__":
    main()
