#!/usr/bin/env python
"""Quickstart: deploy a web-server lambda on λ-NIC and call it.

Builds the paper's testbed (a master and workers on a 10 G switch),
deploys the web-server workload to the SmartNIC backend through the
full pipeline (compile -> store -> flash -> route), then issues
requests through the gateway and prints what the paper's Figure 6
measures: end-to-end latency.

Run:  python examples/quickstart.py
"""

from repro.serverless import Testbed, closed_loop
from repro.workloads import web_server_spec


def main() -> None:
    testbed = Testbed(seed=7)
    testbed.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        print("deploying web_server to the lambda-nic backend ...")
        record = yield testbed.manager.deploy(spec, "lambda-nic")
        print(f"  firmware binary : {record.result.package_bytes / 2**20:.2f} MiB")
        print(f"  startup time    : {record.startup_seconds:.1f} s")
        firmware = testbed.nic_runtime.firmware
        print(f"  instructions    : {firmware.instruction_count}"
              f" (after {firmware.report.total_reduction_percent:.1f}% "
              f"optimizer reduction)")

        print("\nissuing 100 requests through the gateway ...")
        result = yield closed_loop(
            testbed.env, testbed.gateway, spec.name, n_requests=100,
        )
        print(f"  completed  : {result.completed}")
        print(f"  mean       : {result.mean_latency * 1e6:8.2f} us")
        print(f"  p50        : {result.percentile(50) * 1e6:8.2f} us")
        print(f"  p99        : {result.percentile(99) * 1e6:8.2f} us")
        print(f"  throughput : {result.throughput_rps:8.0f} req/s")
        nic = testbed.nics[0]
        print(f"\nNIC stats: {nic.stats.requests_served} served on "
              f"{len(nic.cores)} cores x {nic.cores[0].threads} threads")

    process = testbed.env.process(scenario(testbed.env))
    testbed.run(until=process)


if __name__ == "__main__":
    main()
