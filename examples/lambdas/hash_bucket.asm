# Hash-masked bucket counter: hashes the request id into one of 32
# 8-byte buckets. `hash & 248` keeps the offset inside the 256 B table,
# which the verifier's interval analysis proves — the load and store
# below are reported as info-grade proven-offset findings instead of
# unknown-offset warnings. Lint it with:
#
#     python -m repro.isa.verify examples/lambdas/hash_bucket.asm
.lambda hash_bucket entry=hash_bucket
.object buckets size=256 access=read_write

.func hash_bucket
    hload r1, LambdaHeader.request_id
    hash r2, r1
    and r2, r2, 248
    resolve r14, [buckets+r2]
    load r3, r14, [buckets+r2]
    add r3, r3, 1
    store r14, [buckets+r2], r3
    ret r3
