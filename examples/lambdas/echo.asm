# Minimal straight-line lambda: swap the UDP ports and send the packet
# back out. Lint it with:
#
#     python -m repro.isa.verify examples/lambdas/echo.asm
.lambda echo entry=echo
.func echo
    hload r1, Udp.sport
    hload r2, Udp.dport
    hstore Udp.sport, r2
    hstore Udp.dport, r1
    forward
