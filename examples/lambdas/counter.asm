# Counted loop with an in-bounds store: the verifier proves the loop
# bound (8 iterations), bounds the WCET, and checks the store stays
# inside `scratchpad`. Every register is written before it is read, so
# the lint comes back clean.
.lambda counter entry=counter
.object scratchpad size=64 access=read_write
.func counter
    mov r1, 0
    mov r2, 0
    label loop
    bge r1, 8, done
    add r2, r2, r1
    add r1, r1, 1
    jmp loop
    label done
    resolve r14, [scratchpad+0]
    store r14, [scratchpad+0], r2
    ret r2
