# Walks the segments of a multi-packet RPC, accumulating a per-segment
# cost. The loop limit is read from the packet itself: the declared
# wire range of LambdaHeader.total_segments ([1, 65535]) lets the
# interval analysis bound the loop, where constant propagation alone
# would reject the program as unbounded. The branchy body also
# exercises the path-sensitive WCET collapse (one path per iteration,
# not the sum of both branch sides). Lint it with:
#
#     python -m repro.isa.verify examples/lambdas/seg_walker.asm
.lambda seg_walker entry=seg_walker

.func seg_walker
    hload r1, LambdaHeader.total_segments
    mov r2, 0            # segment index
    mov r3, 0            # accumulated cost
label loop
    bge r2, r1, done
    and r4, r2, 1
    beq r4, 0, even
    add r3, r3, 3        # odd segments pay the reorder surcharge
    jmp next
label even
    add r3, r3, 1
label next
    add r2, r2, 1
    jmp loop
label done
    ret r3
