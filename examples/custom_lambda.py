#!/usr/bin/env python
"""Author and deploy a custom Match+Lambda workload.

Shows the developer-facing API the paper describes in §4.1: write a
lambda against the flat-memory abstract machine model with the IR
builder (our Micro-C front-end), register it with the λ-NIC runtime,
and let the framework generate the parser and match stage, optimise,
and flash.

The custom lambda is a token-counter API: every request increments a
persistent per-bucket counter (global state persists across runs) and
replies with the new count.

Run:  python examples/custom_lambda.py
"""

from repro.core import MatchLambdaWorkload
from repro.isa import AccessMode, ProgramBuilder
from repro.serverless import Testbed, closed_loop

BUCKETS = 16


def build_counter_lambda(name: str = "counter"):
    builder = ProgramBuilder(name)
    # 8 bytes per bucket of persistent state in the flat address space;
    # the compiler will place it (hot -> core-local memory).
    builder.object("counts", BUCKETS * 8, AccessMode.READ_WRITE, hot=True)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.band("r2", "r1", BUCKETS - 1)        # bucket index
    fn.shl("r3", "r2", 3)                   # byte offset
    fn.load("r4", "counts", "r3")           # flat-memory read
    fn.add("r4", "r4", 1)
    fn.store("counts", "r3", "r4")          # flat-memory write
    fn.mstore("count", "r4")                # reply metadata
    fn.mstore("response_bytes", 64)
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.forward()
    builder.close(fn)
    return builder.build()


def main() -> None:
    testbed = Testbed(seed=13, n_workers=1)
    testbed.add_lambda_nic_backend()

    # Deploy by registering directly with the λ-NIC core runtime.
    runtime = testbed.nic_runtime
    workload = MatchLambdaWorkload(build_counter_lambda())
    wid = runtime.register(workload)
    firmware = runtime.deploy_instant()
    testbed.gateway.set_route("counter", wid,
                              [nic.name for nic in testbed.nics])
    placed = firmware.program.object("counter.counts").region
    print(f"deployed 'counter' (wid={wid}); "
          f"state placed in {placed.value} memory")

    def scenario(env):
        result = yield closed_loop(testbed.env, testbed.gateway, "counter",
                                   n_requests=48)
        return result

    process = testbed.env.process(scenario(testbed.env))
    testbed.run(until=process)
    result = process.value
    print(f"served {result.completed} requests, "
          f"mean latency {result.mean_latency * 1e6:.2f} us")

    # Persistent state: each of the 16 buckets was hit 3 times.
    counts = testbed.nics[0].lambda_memory("counter.counts")
    values = [int.from_bytes(counts[i * 8:(i + 1) * 8], "little")
              for i in range(BUCKETS)]
    print(f"per-bucket counts on the NIC: {values}")
    assert all(value == 3 for value in values)
    print("persistent lambda state verified.")


if __name__ == "__main__":
    main()
