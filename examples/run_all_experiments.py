#!/usr/bin/env python
"""Regenerate every table and figure from the paper's evaluation.

Prints each experiment's paper-vs-measured report. Pass ``--fast`` for
the smaller CI-scale configuration.

Run:  python examples/run_all_experiments.py [--fast]
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS, DEFAULT_CONFIG, FAST_CONFIG

ORDER = ["table1", "fig6", "fig7", "fig8", "table2", "table3", "table4",
         "fig9", "reorder"]


def main() -> None:
    config = FAST_CONFIG if "--fast" in sys.argv else DEFAULT_CONFIG
    total_started = time.time()
    for name in ORDER:
        started = time.time()
        report = ALL_EXPERIMENTS[name](config)
        print(report.format())
        print(f"  [{time.time() - started:.1f}s]\n")
    print(f"all experiments regenerated in "
          f"{time.time() - total_started:.1f}s wall-clock")


if __name__ == "__main__":
    main()
