#!/usr/bin/env python
"""Multi-packet RDMA image pipeline on λ-NIC (§6.2c + D3).

Uploads a real (synthetic) RGBA image through the gateway: the payload
is segmented into RDMA writes, reassembled and reordered on the NIC,
written into the lambda's memory object, and the event RPC triggers the
grayscale transform. The script verifies the transformed bytes against
a NumPy reference — the lambda really did process the image.

Run:  python examples/image_pipeline.py
"""

from repro.serverless import Testbed
from repro.workloads import (
    grayscale_reference,
    image_transformer_spec,
    make_rgba_image,
)

WIDTH = HEIGHT = 256


def main() -> None:
    testbed = Testbed(seed=5, n_workers=1)
    testbed.add_lambda_nic_backend()
    spec = image_transformer_spec(width=WIDTH, height=HEIGHT)
    image = make_rgba_image(WIDTH, HEIGHT, seed=9)

    def scenario(env):
        yield testbed.manager.deploy(spec, "lambda-nic")
        print(f"uploading a {WIDTH}x{HEIGHT} RGBA image "
              f"({len(image) / 2**20:.2f} MiB) over RDMA ...")
        outcome = yield testbed.gateway.request(spec.name, payload=image)
        print(f"  transform latency : {outcome.latency * 1e3:.2f} ms")

        nic = testbed.nics[0]
        print(f"  rdma segments     : {nic.stats.rdma_segments}")
        print(f"  rdma messages     : {nic.stats.rdma_messages}")

        transformed = bytes(
            nic.lambda_memory(f"{spec.name}.image")[:WIDTH * HEIGHT]
        )
        expected = grayscale_reference(image)
        assert transformed == expected, "grayscale output mismatch!"
        print(f"  verification      : OK "
              f"({len(transformed)} grayscale bytes match NumPy reference)")

    process = testbed.env.process(scenario(testbed.env))
    testbed.run(until=process)


if __name__ == "__main__":
    main()
