#!/usr/bin/env python
"""The Raft/etcd substrate: replication and leader failover.

The paper's bare-metal backend syncs lambda placement through etcd
(§6.1.1); this example drives that substrate directly: write placement
state, crash the leader, watch a new one take over, and confirm no
committed state was lost.

Run:  python examples/etcd_failover.py
"""

from repro.net import Network
from repro.raft import EtcdClient, EtcdCluster
from repro.sim import Environment, RngRegistry


def main() -> None:
    env = Environment()
    rng = RngRegistry(seed=21)
    network = Network(env)
    cluster = EtcdCluster(env, network, n_nodes=5, rng=rng)
    client = EtcdClient(env, network.add_node("client"), cluster.names)

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        print(f"[{env.now:6.2f}s] leader elected: {leader.name} "
              f"(term {leader.current_term})")

        for worker in ["m2", "m3", "m4"]:
            yield client.set(f"/placement/web_server/{worker}", "active")
        print(f"[{env.now:6.2f}s] wrote 3 placement records")

        print(f"[{env.now:6.2f}s] crashing leader {leader.name} ...")
        leader.crash()
        yield env.timeout(2.0)

        new_leader = cluster.leader()
        print(f"[{env.now:6.2f}s] new leader: {new_leader.name} "
              f"(term {new_leader.current_term})")
        assert new_leader.name != leader.name

        value = yield client.get("/placement/web_server/m3")
        print(f"[{env.now:6.2f}s] state survived failover: "
              f"/placement/web_server/m3 = {value!r}")
        assert value == "active"

        yield client.set("/placement/web_server/m5", "active")
        print(f"[{env.now:6.2f}s] cluster still accepts writes; "
              "recovering the old leader ...")
        cluster.recover(leader.name)
        yield env.timeout(2.0)
        recovered = cluster.stores[leader.name].data
        assert "/placement/web_server/m5" in recovered
        print(f"[{env.now:6.2f}s] recovered node caught up "
              f"({len(recovered)} keys). all good.")

    process = env.process(scenario(env))
    env.run(until=process)


if __name__ == "__main__":
    main()
