#!/usr/bin/env python
"""Write a lambda in Micro-C source and run it on λ-NIC.

The paper's users author lambdas in Micro-C (Listings 1-2). This
example writes a rate-tracking API lambda as source text, compiles it
through the front-end, deploys the firmware, and calls it — the
closest thing to the paper's end-to-end developer workflow.

Run:  python examples/microc_lambda.py
"""

from repro.core import MatchLambdaWorkload
from repro.microc import compile_microc
from repro.serverless import Testbed, closed_loop

SOURCE = """
// A tiny API backend: per-user hit counters with a burst flag.
#pragma hot hits
uint64_t hits[32];

int api_backend() {
    int user = hdr.LambdaHeader.wid & 31;  // demo: one shared bucket
    hits[user] = hits[user] + 1;
    meta.count = hits[user];
    if (hits[user] > 4) {
        meta.throttled = 1;
        reply(32);           // short "429" response
        return 0;
    }
    meta.throttled = 0;
    reply(256);              // normal response
    return 0;
}
"""


def main() -> None:
    program = compile_microc(SOURCE, name="api_backend")
    print(f"compiled Micro-C -> {program.instruction_count} NPU instructions, "
          f"{program.data_bytes} B of lambda state")

    testbed = Testbed(seed=23, n_workers=1)
    testbed.add_lambda_nic_backend()
    runtime = testbed.nic_runtime
    wid = runtime.register(MatchLambdaWorkload(program))
    firmware = runtime.deploy_instant()
    testbed.gateway.set_route("api_backend", wid,
                              [nic.name for nic in testbed.nics])
    print(f"deployed as wid={wid}; state in "
          f"{firmware.program.object('api_backend.hits').region.value} memory")

    def scenario(env):
        # Hammer one user id six times: the 5th+ request gets throttled.
        outcomes = []
        for _ in range(6):
            outcome = yield testbed.gateway.request("api_backend")
            meta = outcome.response.meta["lambda_meta"]
            outcomes.append((meta["count"], meta["throttled"]))
        return outcomes

    process = testbed.env.process(scenario(testbed.env))
    testbed.run(until=process)
    for count, throttled in process.value:
        state = "THROTTLED" if throttled else "ok"
        print(f"  hit count={count} -> {state}")

    counts = [count for count, _ in process.value]
    throttled = [bool(flag) for _, flag in process.value]
    assert counts == [1, 2, 3, 4, 5, 6]
    assert throttled == [False] * 4 + [True] * 2
    print("persistent counters and throttling verified.")


if __name__ == "__main__":
    main()
